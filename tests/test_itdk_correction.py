"""Unit tests for the trace graph, correction, and delay analysis."""

import pytest

from repro.analysis.correction import (
    corrected_graph,
    corrected_trace_length,
    degree_distributions,
    path_length_distributions,
)
from repro.analysis.delays import rtt_jump, rtt_profile, RttPoint
from repro.analysis.itdk import TraceGraph
from repro.core.revelation import Revelation, RevelationMethod
from repro.probing.prober import Trace, TraceHop


def hop(ttl, address, kind="time-exceeded", rtt=1.0):
    return TraceHop(
        probe_ttl=ttl, address=address, reply_kind=kind,
        reply_ttl=250, rtt_ms=rtt,
    )


def make_trace(addresses, reached=True):
    trace = Trace(
        source="vp", source_address=0, dst=addresses[-1], flow_id=1
    )
    for offset, address in enumerate(addresses):
        trace.hops.append(hop(offset + 1, address))
    if reached:
        trace.hops[-1].reply_kind = "echo-reply"
    trace.destination_reached = reached
    return trace


def alias(address):
    # Addresses 100..109 alias to one router.
    if 100 <= address < 110:
        return "bigrouter"
    return f"r{address}"


class TestTraceGraph:
    def test_edges_from_consecutive_hops(self):
        graph = TraceGraph()
        graph.add_trace(make_trace([1, 2, 3]))
        assert graph.edge_count() == 2
        assert graph.has_edge("ip_0.0.0.1", "ip_0.0.0.2")

    def test_gap_breaks_edge(self):
        graph = TraceGraph()
        trace = make_trace([1, 2, 3])
        trace.hops[2].probe_ttl = 4  # a star in between
        graph.add_trace(trace)
        assert graph.edge_count() == 1
        assert not graph.has_edge("ip_0.0.0.2", "ip_0.0.0.3")

    def test_alias_resolution_merges_nodes(self):
        graph = TraceGraph(alias_of=alias)
        graph.add_trace(make_trace([1, 100, 2]))
        graph.add_trace(make_trace([3, 105, 4]))
        assert graph.has_node("bigrouter")
        assert graph.degree("bigrouter") == 4
        assert graph.addresses_of("bigrouter") == {100, 105}

    def test_self_loops_ignored(self):
        graph = TraceGraph(alias_of=alias)
        graph.add_trace(make_trace([100, 101]))  # same router twice
        assert graph.edge_count() == 0

    def test_high_degree_nodes(self):
        graph = TraceGraph(alias_of=alias)
        for i in range(6):
            graph.add_trace(make_trace([200 + i, 100, 300 + i]))
        assert graph.high_degree_nodes(12) == ["bigrouter"]
        assert graph.high_degree_nodes(13) == []

    def test_density_full_graph(self):
        graph = TraceGraph()
        graph.add_trace(make_trace([1, 2, 3]))
        # 3 nodes, 2 edges -> 2*2 / (3*2) = 2/3
        assert graph.density() == pytest.approx(2 / 3)

    def test_density_subgraph(self):
        graph = TraceGraph()
        graph.add_trace(make_trace([1, 2, 3, 4]))
        nodes = ["ip_0.0.0.1", "ip_0.0.0.2"]
        assert graph.density(nodes) == pytest.approx(1.0)
        assert graph.density(["ip_0.0.0.1"]) == 0.0

    def test_clustering_coefficient(self):
        graph = TraceGraph()
        graph.add_path([1, 2, 3, 1])  # triangle
        assert graph.clustering_coefficient("ip_0.0.0.1") == 1.0
        graph.add_edge_addresses(1, 4)
        assert graph.clustering_coefficient("ip_0.0.0.1") == pytest.approx(
            1 / 3
        )

    def test_asn_attribution(self):
        graph = TraceGraph(asn_of=lambda address: address // 100)
        graph.add_trace(make_trace([101, 201]))
        assert graph.asn_of_node("ip_0.0.0.101") == 1
        assert graph.nodes_in_as(2) == ["ip_0.0.0.201"]

    def test_copy_is_independent(self):
        graph = TraceGraph()
        graph.add_trace(make_trace([1, 2]))
        clone = graph.copy()
        clone.add_edge_addresses(2, 3)
        assert graph.edge_count() == 1
        assert clone.edge_count() == 2

    def test_degree_distribution(self):
        graph = TraceGraph()
        graph.add_trace(make_trace([1, 2, 3]))
        dist = graph.degree_distribution()
        assert sorted(dist.values) == [1, 1, 2]


def make_revelation(ingress, egress, revealed):
    revelation = Revelation(ingress=ingress, egress=egress)
    revelation.revealed = list(revealed)
    revelation.step_reveals = [len(revealed)]
    revelation.method = (
        RevelationMethod.DPR if revealed else RevelationMethod.NONE
    )
    return revelation


class TestCorrection:
    def test_corrected_graph_replaces_edge(self):
        graph = TraceGraph()
        graph.add_trace(make_trace([1, 2, 3, 4]))
        fixed = corrected_graph(graph, [make_revelation(2, 3, [10, 11])])
        assert not fixed.has_edge("ip_0.0.0.2", "ip_0.0.0.3")
        assert fixed.has_edge("ip_0.0.0.2", "ip_0.0.0.10")
        assert fixed.has_edge("ip_0.0.0.11", "ip_0.0.0.3")
        # Original untouched.
        assert graph.has_edge("ip_0.0.0.2", "ip_0.0.0.3")

    def test_failed_revelations_ignored(self):
        graph = TraceGraph()
        graph.add_trace(make_trace([1, 2, 3]))
        fixed = corrected_graph(graph, [make_revelation(1, 2, [])])
        assert fixed.has_edge("ip_0.0.0.1", "ip_0.0.0.2")

    def test_degree_distributions_shift(self):
        graph = TraceGraph()
        # Star: 2 is adjacent to five "egresses" via invisible tunnels.
        for egress in (3, 4, 5, 6, 7):
            graph.add_trace(make_trace([1, 2, egress]))
        # Realistically the tunnels share their first LSR (hop 10):
        # correction collapses the star into a tree behind it.
        revelations = [
            make_revelation(2, egress, [10, 10 * egress])
            for egress in (3, 4, 5, 6, 7)
        ]
        invisible, visible = degree_distributions(graph, revelations)
        assert invisible.max == 6  # node 2: 1 + five egresses
        fixed = corrected_graph(graph, revelations)
        # The false star at the ingress collapses...
        assert fixed.degree("ip_0.0.0.2") == 2
        # ...and the share of high-degree nodes shrinks.
        assert visible.fraction(lambda d: d >= 6) < invisible.fraction(
            lambda d: d >= 6
        )

    def test_corrected_trace_length(self):
        trace = make_trace([1, 2, 3, 4])
        revelations = {(2, 3): make_revelation(2, 3, [10, 11])}
        length = corrected_trace_length(
            trace, lambda a, b: revelations.get((a, b))
        )
        assert trace.forward_length == 4
        assert length == 6

    def test_unreached_trace_skipped(self):
        trace = make_trace([1, 2, 3], reached=False)
        assert corrected_trace_length(trace, lambda a, b: None) is None

    def test_path_length_distributions(self):
        traces = [make_trace([1, 2, 3, 4]), make_trace([5, 6, 7])]
        revelations = {(2, 3): make_revelation(2, 3, [10])}
        invisible, visible = path_length_distributions(
            traces, revelations
        )
        assert invisible.values == [4, 3]
        assert visible.values == [5, 3]


class TestDelays:
    def test_rtt_profile(self):
        trace = make_trace([1, 2, 3])
        trace.hops[0].rtt_ms = 5.0
        trace.hops[1].rtt_ms = 10.0
        trace.hops[2].rtt_ms = 60.0
        profile = rtt_profile(trace)
        assert [point.rtt_ms for point in profile] == [5.0, 10.0, 60.0]

    def test_rtt_jump(self):
        profile = [
            RttPoint(1, 1, 5.0),
            RttPoint(2, 2, 10.0),
            RttPoint(3, 3, 60.0),
        ]
        hop, delta = rtt_jump(profile)
        assert hop == 3
        assert delta == 50.0

    def test_rtt_jump_empty(self):
        assert rtt_jump([]) == (None, 0.0)
        assert rtt_jump([RttPoint(1, 1, 5.0)]) == (None, 0.0)
