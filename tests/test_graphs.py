"""Tests for aggregate graph metrics and star pseudo-nodes."""


from repro.analysis.graphs import (
    average_clustering,
    bfs_distances,
    connected_components,
    shortest_path_stats,
    summarize_graph,
)
from repro.analysis.itdk import TraceGraph
from repro.probing.prober import Trace, TraceHop


def chain_graph(n):
    graph = TraceGraph()
    graph.add_path(list(range(1, n + 1)))
    return graph


def node(i):
    from repro.net.addressing import format_address

    return f"ip_{format_address(i)}"


class TestBfs:
    def test_distances_on_chain(self):
        graph = chain_graph(5)
        distances = bfs_distances(graph, node(1))
        assert distances[node(5)] == 4
        assert distances[node(1)] == 0

    def test_unreachable_not_listed(self):
        graph = chain_graph(3)
        graph.add_edge_addresses(100, 101)
        distances = bfs_distances(graph, node(1))
        assert node(100) not in distances


class TestComponents:
    def test_two_components(self):
        graph = chain_graph(4)
        graph.add_edge_addresses(100, 101)
        components = connected_components(graph)
        assert len(components) == 2
        assert len(components[0]) == 4  # largest first

    def test_empty_graph(self):
        assert connected_components(TraceGraph()) == []


class TestShortestPaths:
    def test_chain_stats(self):
        graph = chain_graph(4)
        lengths, diameter = shortest_path_stats(graph)
        assert diameter == 3
        # Ordered pairs: 2*(3*1 + 2*... ) — just check the mean sanity.
        assert lengths.min == 1
        assert lengths.max == 3

    def test_sampled_sources(self):
        graph = chain_graph(5)
        lengths, diameter = shortest_path_stats(graph, [node(1)])
        assert len(lengths) == 4
        assert diameter == 4


class TestClustering:
    def test_triangle(self):
        graph = TraceGraph()
        graph.add_path([1, 2, 3, 1])
        assert average_clustering(graph) == 1.0

    def test_chain_has_none(self):
        assert average_clustering(chain_graph(4)) == 0.0

    def test_empty(self):
        assert average_clustering(TraceGraph()) == 0.0


class TestSummary:
    def test_summary_fields(self):
        graph = chain_graph(4)
        summary = summarize_graph(graph)
        assert summary.node_count == 4
        assert summary.edge_count == 3
        assert summary.diameter == 3
        assert summary.components == 1
        assert summary.max_degree == 2
        assert len(summary.as_row()) == 9

    def test_correction_shrinks_density(self):
        # A fake invisible mesh: one ingress adjacent to 4 egresses.
        graph = TraceGraph()
        for egress in (2, 3, 4, 5):
            graph.add_edge_addresses(1, egress)
        dense = summarize_graph(graph)
        from repro.analysis.correction import corrected_graph
        from repro.core.revelation import Revelation, RevelationMethod

        revelations = []
        for egress in (2, 3, 4, 5):
            revelation = Revelation(ingress=1, egress=egress)
            revelation.revealed = [50]
            revelation.step_reveals = [1]
            revelation.method = RevelationMethod.DPR_OR_BRPR
            revelations.append(revelation)
        sparse = summarize_graph(corrected_graph(graph, revelations))
        assert sparse.density < dense.density
        assert sparse.mean_path_length > dense.mean_path_length


class TestStarNodes:
    def _trace_with_star(self):
        trace = Trace(source="vp", source_address=0, dst=3, flow_id=1)
        trace.hops.append(
            TraceHop(probe_ttl=1, address=1, reply_kind="time-exceeded",
                     reply_ttl=250)
        )
        trace.hops.append(TraceHop(probe_ttl=2, address=None))
        trace.hops.append(
            TraceHop(probe_ttl=3, address=3, reply_kind="echo-reply",
                     reply_ttl=250)
        )
        trace.destination_reached = True
        return trace

    def test_star_creates_pseudo_node(self):
        graph = TraceGraph(star_nodes=True)
        graph.add_trace(self._trace_with_star())
        assert any(n.startswith("star_") for n in graph.nodes())
        # The chain is connected through the pseudo node.
        assert len(connected_components(graph)) == 1

    def test_without_star_nodes_gap_remains(self):
        graph = TraceGraph()
        graph.add_trace(self._trace_with_star())
        assert len(connected_components(graph)) == 2

    def test_distinct_stars_per_occurrence(self):
        graph = TraceGraph(star_nodes=True)
        graph.add_trace(self._trace_with_star())
        graph.add_trace(self._trace_with_star())
        stars = [n for n in graph.nodes() if n.startswith("star_")]
        assert len(stars) == 2  # never aliased together

    def test_prune_pseudo_nodes(self):
        graph = TraceGraph(star_nodes=True)
        graph.add_trace(self._trace_with_star())
        removed = graph.prune_pseudo_nodes()
        assert removed == 1
        assert not any(n.startswith("star_") for n in graph.nodes())
        assert len(connected_components(graph)) == 2
