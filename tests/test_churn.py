"""The churn model: seeded evolution of a live synthetic internet.

The monitoring loop's determinism rests on churn being a pure
function of ``(seed, epoch, profile, schedule)``: a resumed monitor
replays the churn of already-completed epochs on a fresh process and
must land in exactly the network state the original run had.  These
tests pin that contract, the AS-confinement knob the
incremental-safety test leans on, the scripted-event strictness, and
the frozen-network guard.
"""

import pytest

from repro.net.topology import FrozenNetworkError
from repro.synth import (
    CHURN_PROFILES,
    ChurnModel,
    ChurnProfile,
    churn_profile,
    churn_profile_names,
)
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import scaled_profiles


def _internet(seed=2017):
    return build_internet(
        InternetConfig(
            profiles=tuple(scaled_profiles(0.3)),
            vantage_points=2,
            stubs_per_transit=2,
            seed=seed,
        )
    )


def _event_dicts(events):
    return [event.to_dict() for event in events]


class TestProfiles:
    def test_shipped_profiles_resolve(self):
        for name in churn_profile_names():
            assert churn_profile(name).name == name
        assert churn_profile("calm") is CHURN_PROFILES["calm"]

    def test_unknown_profile_lists_known_names(self):
        with pytest.raises(ValueError, match="calm.*turbulent"):
            churn_profile("tsunami")

    def test_restricted_to_pins_asns(self):
        confined = churn_profile("steady").restricted_to((3320,))
        assert confined.asns == (3320,)
        assert confined.link_cost_flips == 2


class TestDeterminism:
    def test_twin_internets_churn_identically(self):
        """Same seed + profile => byte-identical event streams."""
        streams = []
        for _ in range(2):
            model = ChurnModel(
                _internet(), churn_profile("turbulent"), seed=7
            )
            streams.append(
                [
                    _event_dicts(model.advance(epoch))
                    for epoch in range(1, 4)
                ]
            )
        assert streams[0] == streams[1]
        assert any(batch for batch in streams[0])

    def test_epoch_rng_not_carried_across_epochs(self):
        """Replaying epochs 1..3 equals advancing through them.

        The per-epoch RNG is derived from ``(seed, epoch)`` — a
        different seed changes every batch, but the batch for epoch N
        never depends on how many RNG draws earlier epochs made.
        """
        stepped = ChurnModel(
            _internet(), churn_profile("gentle"), seed=7
        )
        batches = [
            _event_dicts(stepped.advance(epoch))
            for epoch in range(1, 4)
        ]
        other_seed = ChurnModel(
            _internet(), churn_profile("gentle"), seed=8
        )
        rebatched = [
            _event_dicts(other_seed.advance(epoch))
            for epoch in range(1, 4)
        ]
        assert batches != rebatched
        assert stepped.events == [
            event
            for epoch in range(1, 4)
            for event in stepped.events
            if event.epoch == epoch
        ]

    def test_calm_profile_applies_nothing(self):
        model = ChurnModel(_internet(), churn_profile("calm"), seed=7)
        for epoch in range(1, 4):
            assert model.advance(epoch) == []


class TestConfinement:
    def test_restricted_profile_touches_only_allowed_as(self):
        internet = _internet()
        asn = sorted(internet.transit_asns)[0]
        profile = churn_profile("turbulent").restricted_to((asn,))
        model = ChurnModel(internet, profile, seed=11)
        events = [
            event
            for epoch in range(1, 5)
            for event in model.advance(epoch)
        ]
        assert events
        assert ChurnModel.touched_asns(events) == (asn,)


class TestScriptedEvents:
    def test_ldp_policy_flip_toggles_ttl_propagate(self):
        internet = _internet()
        asn = sorted(internet.transit_asns)[0]
        router = sorted(
            (
                router
                for router in internet.network.routers_in_as(asn)
                if router.mpls.enabled
            ),
            key=lambda router: router.name,
        )[0]
        before = router.mpls.ttl_propagate
        model = ChurnModel(
            internet,
            churn_profile("calm"),
            seed=3,
            schedule={1: [{"kind": "ldp-policy", "router": router.name}]},
        )
        (event,) = model.advance(1)
        assert event.kind == "ldp-policy"
        assert event.asn == asn
        assert router.mpls.ttl_propagate is (not before)
        assert event.detail["ttl_propagate"] is (not before)

    def test_te_install_then_teardown_round_trips(self):
        # Discover a viable head/tail on a twin via a profile-driven
        # install, then script the same pair on a fresh internet.
        scout = ChurnModel(
            _internet(),
            ChurnProfile(name="te-only", te_installs=1),
            seed=3,
        )
        (scouted,) = scout.advance(1)
        head, tail = scouted.target.split("->")
        internet = _internet()
        model = ChurnModel(
            internet,
            churn_profile("calm"),
            seed=3,
            schedule={
                1: [{"kind": "te-install", "head": head, "tail": tail}],
                2: [{"kind": "te-teardown", "head": head, "tail": tail}],
            },
        )
        installed = len(internet.te_tunnels)
        (install,) = model.advance(1)
        assert install.kind == "te-install"
        assert install.asn == scouted.asn
        assert len(internet.te_tunnels) == installed + 1
        assert internet.control.te.tunnel_from(head, tail) is not None
        (teardown,) = model.advance(2)
        assert teardown.kind == "te-teardown"
        assert len(internet.te_tunnels) == installed
        assert internet.control.te.tunnel_from(head, tail) is None

    def test_inapplicable_scripted_event_raises(self):
        internet = _internet()
        model = ChurnModel(
            internet,
            churn_profile("calm"),
            seed=3,
            schedule={
                1: [{"kind": "te-teardown", "head": "no", "tail": "pe"}]
            },
        )
        with pytest.raises(ValueError, match="no such installed"):
            model.advance(1)

    def test_unknown_scripted_kind_raises(self):
        model = ChurnModel(
            _internet(),
            churn_profile("calm"),
            seed=3,
            schedule={1: [{"kind": "bgp-hijack"}]},
        )
        with pytest.raises(ValueError, match="unknown scripted"):
            model.advance(1)


class TestFrozenGuard:
    def test_frozen_network_cannot_churn(self):
        internet = _internet()
        internet.network.freeze()
        with pytest.raises(FrozenNetworkError, match="monitoring"):
            ChurnModel(internet, churn_profile("gentle"), seed=1)

    def test_custom_profile_dataclass_is_usable(self):
        profile = ChurnProfile(name="just-links", link_cost_flips=1)
        model = ChurnModel(_internet(), profile, seed=5)
        events = model.advance(1)
        assert [event.kind for event in events] == ["link-cost"]
