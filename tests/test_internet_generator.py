"""Tests for the synthetic Internet generator."""

import pytest

from repro.mpls.config import PoppingMode
from repro.net.vendors import LdpPolicy
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import (
    PAPER_PROFILES,
    SURVEY,
    TransitProfile,
    paper_profiles,
)


@pytest.fixture(scope="module")
def internet():
    return build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.5)),
            vantage_points=4,
            stubs_per_transit=2,
            seed=42,
        )
    )


class TestProfiles:
    def test_ten_paper_ases(self):
        assert len(PAPER_PROFILES) == 10
        asns = {p.asn for p in PAPER_PROFILES}
        assert {3491, 4134, 2856, 3320, 6762, 209, 1299, 3549, 9498,
                3257} == asns

    def test_vendor_mixes_are_distributions(self):
        for profile in PAPER_PROFILES:
            assert sum(profile.vendor_mix.values()) == pytest.approx(1.0)

    def test_scaling_keeps_minimums(self):
        tiny = paper_profiles(0.01)
        for profile in tiny:
            assert profile.core_size >= 2
            assert profile.edge_size >= 3

    def test_scaling_preserves_overrides(self):
        by_asn = {p.asn: p for p in paper_profiles(0.5)}
        assert by_asn[3491].ldp_all_prefixes is True
        assert by_asn[2856].uhp_share == 1.0

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            paper_profiles(0)

    def test_survey_constants(self):
        assert SURVEY["mpls_deployment"] == 0.87
        assert SURVEY["no_ttl_propagate"] == 0.48
        assert SURVEY["uhp"] == 0.10

    def test_dominant_vendor(self):
        profile = TransitProfile(
            asn=1, name="x", vendor_mix={"cisco": 0.7, "juniper": 0.3},
            core_size=2, edge_size=3,
        )
        assert profile.dominant_vendor() == "cisco"


class TestTopologyInvariants:
    def test_structure_counts(self, internet):
        assert len(internet.transit_asns) == 10
        assert len(internet.stub_asns) == 20
        assert len(internet.vps) == 4
        internet.network.validate()

    def test_transit_routers_run_mpls(self, internet):
        for asn in internet.transit_asns:
            for router in internet.network.routers_in_as(asn):
                assert router.mpls.enabled

    def test_stub_routers_do_not(self, internet):
        for asn in internet.stub_asns:
            for router in internet.network.routers_in_as(asn):
                assert not router.mpls.enabled

    def test_edge_and_core_partition(self, internet):
        for asn in internet.transit_asns:
            routers = set(internet.network.routers_in_as(asn))
            split = set(internet.edge_routers(asn)) | set(
                internet.core_routers(asn)
            )
            assert split == routers

    def test_uhp_profile_applied(self, internet):
        for router in internet.network.routers_in_as(2856):
            assert router.mpls.popping is PoppingMode.UHP

    def test_ldp_override_applied(self, internet):
        for router in internet.network.routers_in_as(3491):
            assert router.mpls.ldp_policy is LdpPolicy.ALL_PREFIXES

    def test_every_stub_reaches_a_transit(self, internet):
        for asn in internet.stub_asns:
            uplinks = internet.stub_uplinks[asn]
            assert uplinks
            assert all(u in internet.profiles for u in uplinks)

    def test_vps_in_distinct_stubs(self, internet):
        assert len({vp.asn for vp in internet.vps}) == len(internet.vps)

    def test_campaign_targets_are_observable_addresses(self, internet):
        targets = internet.campaign_targets()
        assert targets
        for target in targets:
            owner = internet.router_of_address(target)
            assert owner is not None
            assert owner.asn in internet.stub_asns

    def test_asn_of_address_ground_truth(self, internet):
        for asn in internet.transit_asns[:2]:
            for router in internet.network.routers_in_as(asn)[:3]:
                assert internet.asn_of_address(router.loopback) == asn

    def test_full_reachability_between_vps(self, internet):
        source = internet.vps[0]
        for vp in internet.vps[1:]:
            outcome = internet.engine.send_probe(
                source, vp.loopback, ttl=255, flow_id=0
            )
            assert outcome.reply_kind == "echo-reply"


class TestDeterminism:
    def test_same_seed_same_topology(self):
        config = InternetConfig(
            profiles=tuple(paper_profiles(0.4)),
            vantage_points=3,
            stubs_per_transit=2,
            seed=99,
        )
        a = build_internet(config)
        b = build_internet(config)
        assert sorted(a.network.routers) == sorted(b.network.routers)
        assert [str(link.prefix) for link in a.network.links] == [
            str(link.prefix) for link in b.network.links
        ]
        assert [vp.name for vp in a.vps] == [vp.name for vp in b.vps]

    def test_different_seed_different_wiring(self):
        base = InternetConfig(
            profiles=tuple(paper_profiles(0.4)),
            vantage_points=3,
            stubs_per_transit=2,
            seed=1,
        )
        other = InternetConfig(
            profiles=tuple(paper_profiles(0.4)),
            vantage_points=3,
            stubs_per_transit=2,
            seed=2,
        )
        a = build_internet(base)
        b = build_internet(other)
        links_a = {
            tuple(r.name for r in link.routers)
            for link in a.network.links
        }
        links_b = {
            tuple(r.name for r in link.routers)
            for link in b.network.links
        }
        assert links_a != links_b

    def test_probing_is_deterministic(self):
        config = InternetConfig(
            profiles=tuple(paper_profiles(0.4)),
            vantage_points=3,
            stubs_per_transit=2,
            seed=5,
        )
        a = build_internet(config)
        b = build_internet(config)
        dst_a = a.campaign_targets()[0]
        dst_b = b.campaign_targets()[0]
        trace_a = a.prober.traceroute(a.vps[0], dst_a, flow_id=9)
        trace_b = b.prober.traceroute(b.vps[0], dst_b, flow_id=9)
        assert trace_a.addresses == trace_b.addresses
        assert [h.reply_ttl for h in trace_a.hops] == [
            h.reply_ttl for h in trace_b.hops
        ]


class TestRandomProfilesFollowSurvey:
    def test_shares_converge_to_survey(self):
        from repro.synth.profiles import random_profiles

        profiles = random_profiles(400, seed=7)
        hides = sum(
            1 for p in profiles if p.ttl_propagate_share == 0.0
        ) / len(profiles)
        uhp = sum(1 for p in profiles if p.uhp_share > 0) / len(profiles)
        mixed = sum(
            1 for p in profiles if len(p.vendor_mix) > 1
        ) / len(profiles)
        assert abs(hides - SURVEY["no_ttl_propagate"]) < 0.08
        assert abs(uhp - SURVEY["uhp"]) < 0.05
        assert abs(mixed - SURVEY["mixed_hardware"]) < 0.08

    def test_random_profiles_validation(self):
        from repro.synth.profiles import random_profiles

        with pytest.raises(ValueError):
            random_profiles(0)
        profiles = random_profiles(5, seed=1)
        assert len({p.asn for p in profiles}) == 5
        for profile in profiles:
            assert sum(profile.vendor_mix.values()) == pytest.approx(1.0)
