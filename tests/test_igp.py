"""Unit and property tests for the IGP (SPF) routing substrate."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.topology import Network
from repro.routing.igp import IgpRouting


def build_square(weights=(1, 1, 1, 1)):
    """A -- B / A -- C / B -- D / C -- D with configurable weights."""
    network = Network()
    a = network.add_router("A", asn=1)
    b = network.add_router("B", asn=1)
    c = network.add_router("C", asn=1)
    d = network.add_router("D", asn=1)
    network.add_link(a, b, weight=weights[0])
    network.add_link(a, c, weight=weights[1])
    network.add_link(b, d, weight=weights[2])
    network.add_link(c, d, weight=weights[3])
    return network, (a, b, c, d)


class TestShortestPaths:
    def test_distances_on_square(self):
        network, (a, b, c, d) = build_square()
        igp = IgpRouting(network, 1)
        assert igp.distance(a, d) == 2
        assert igp.distance(a, a) == 0
        assert igp.distance(b, c) == 2

    def test_weighted_path_selection(self):
        network, (a, b, c, d) = build_square(weights=(1, 5, 1, 1))
        igp = IgpRouting(network, 1)
        assert igp.distance(a, d) == 2
        assert igp.next_hops(a, d) == [b]
        path = igp.shortest_path(a, d)
        assert [r.name for r in path] == ["A", "B", "D"]

    def test_ecmp_candidates(self):
        network, (a, b, c, d) = build_square()
        igp = IgpRouting(network, 1)
        hops = igp.next_hops(a, d)
        assert {r.name for r in hops} == {"B", "C"}
        assert igp.ecmp_width(a, d) == 2

    def test_ecmp_rank_selects_branches(self):
        network, (a, b, c, d) = build_square()
        igp = IgpRouting(network, 1)
        paths = {
            tuple(r.name for r in igp.shortest_path(a, d, ecmp_rank=rank))
            for rank in range(2)
        }
        assert paths == {("A", "B", "D"), ("A", "C", "D")}

    def test_self_route_is_empty(self):
        network, (a, *_rest) = build_square()
        igp = IgpRouting(network, 1)
        assert igp.next_hops(a, a) == []

    def test_unreachable(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)  # no link
        igp = IgpRouting(network, 1)
        assert igp.distance(a, b) == float("inf")
        assert igp.next_hops(a, b) == []
        assert igp.shortest_path(a, b) is None

    def test_foreign_router_rejected(self):
        network, (a, *_rest) = build_square()
        other = network.add_router("X", asn=2)
        igp = IgpRouting(network, 1)
        with pytest.raises(ValueError):
            igp.distance(a, other)

    def test_asymmetric_weights(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        network.add_link(a, b, weight=1, weight_back=10)
        igp = IgpRouting(network, 1)
        assert igp.distance(a, b) == 1
        assert igp.distance(b, a) == 10

    def test_hop_count(self):
        network, (a, b, c, d) = build_square()
        igp = IgpRouting(network, 1)
        assert igp.hop_count(a, d) == 2
        assert igp.hop_count(a, b) == 1

    def test_closest(self):
        network, (a, b, c, d) = build_square(weights=(1, 3, 1, 1))
        igp = IgpRouting(network, 1)
        assert igp.closest(a, [c, d]) is d  # d at 2 via b, c at 3
        assert igp.closest(a, []) is None

    def test_closest_ties_break_on_name(self):
        network, (a, b, c, d) = build_square()
        igp = IgpRouting(network, 1)
        assert igp.closest(a, [c, b]).name == "B"


def _brute_force_distance(edges, n, source, target):
    """Floyd-Warshall reference implementation."""
    INF = float("inf")
    dist = [[INF] * n for _ in range(n)]
    for i in range(n):
        dist[i][i] = 0
    for u, v, w in edges:
        dist[u][v] = min(dist[u][v], w)
        dist[v][u] = min(dist[v][u], w)
    for k in range(n):
        for i in range(n):
            for j in range(n):
                if dist[i][k] + dist[k][j] < dist[i][j]:
                    dist[i][j] = dist[i][k] + dist[k][j]
    return dist[source][target]


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_matches_floyd_warshall(self, data):
        n = data.draw(st.integers(min_value=2, max_value=8))
        possible_edges = list(itertools.combinations(range(n), 2))
        chosen = data.draw(
            st.lists(
                st.sampled_from(possible_edges),
                min_size=1,
                max_size=len(possible_edges),
                unique=True,
            )
        )
        weights = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=9),
                min_size=len(chosen),
                max_size=len(chosen),
            )
        )
        network = Network()
        routers = [network.add_router(f"R{i}", asn=1) for i in range(n)]
        edges = []
        for (u, v), w in zip(chosen, weights):
            network.add_link(routers[u], routers[v], weight=w)
            edges.append((u, v, w))
        igp = IgpRouting(network, 1)
        source = data.draw(st.integers(0, n - 1))
        target = data.draw(st.integers(0, n - 1))
        expected = _brute_force_distance(edges, n, source, target)
        assert igp.distance(routers[source], routers[target]) == expected

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_paths_are_consistent_with_distances(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 9)
        network = Network()
        routers = [network.add_router(f"R{i}", asn=1) for i in range(n)]
        # random connected-ish graph: chain + random chords
        for i in range(1, n):
            network.add_link(
                routers[i - 1], routers[i], weight=rng.randint(1, 5)
            )
        for _ in range(n):
            u, v = rng.sample(range(n), 2)
            if routers[u].interface_toward(routers[v]) is None:
                network.add_link(
                    routers[u], routers[v], weight=rng.randint(1, 5)
                )
        igp = IgpRouting(network, 1)
        for source in routers:
            for target in routers:
                if source is target:
                    continue
                path = igp.shortest_path(source, target)
                assert path is not None
                # Path length in weights equals the reported distance.
                total = 0
                for first, second in zip(path, path[1:]):
                    link = first.interface_toward(second).link
                    total += link.weight_from(first)
                assert total == igp.distance(source, target)
