"""Unit tests for the Table 2 / Table 6 configuration matrices."""

import pytest

from repro.core.classify import (
    LspVisibility,
    expected_visibility,
    technique_applicability,
)
from repro.net.vendors import LdpPolicy


class TestExpectedVisibility:
    def test_external_propagate_explicit(self):
        cell = expected_visibility(
            LdpPolicy.ALL_PREFIXES, target_internal=False,
            ttl_propagate=True,
        )
        assert cell.visibility is LspVisibility.EXPLICIT
        assert not cell.frpla_shift
        assert not cell.rtla_gap

    def test_external_no_propagate_invisible_with_shift(self):
        cell = expected_visibility(
            LdpPolicy.ALL_PREFIXES, target_internal=False,
            ttl_propagate=False,
        )
        assert cell.visibility is LspVisibility.INVISIBLE
        assert cell.frpla_shift
        assert not cell.rtla_gap  # Cisco signature by default

    def test_gap_needs_juniper_signature(self):
        cisco = expected_visibility(
            LdpPolicy.LOOPBACK_ONLY, False, False, signature=(255, 255)
        )
        juniper = expected_visibility(
            LdpPolicy.LOOPBACK_ONLY, False, False, signature=(255, 64)
        )
        assert not cisco.rtla_gap
        assert juniper.rtla_gap

    def test_internal_targets_reveal(self):
        brpr_cell = expected_visibility(
            LdpPolicy.ALL_PREFIXES, True, False
        )
        dpr_cell = expected_visibility(
            LdpPolicy.LOOPBACK_ONLY, True, False
        )
        assert brpr_cell.visibility is LspVisibility.LAST_HOP_NO_LABEL
        assert brpr_cell.revelation == "brpr"
        assert dpr_cell.visibility is LspVisibility.ROUTE_NO_LABEL
        assert dpr_cell.revelation == "dpr"

    def test_internal_visibility_independent_of_ttl_policy(self):
        # Table 2: the internal-target rows show the same revelation
        # phenomenon in both TTL columns.
        for propagate in (True, False):
            cell = expected_visibility(
                LdpPolicy.ALL_PREFIXES, True, propagate
            )
            assert cell.visibility is LspVisibility.LAST_HOP_NO_LABEL

    def test_shift_follows_ttl_policy_only(self):
        for ldp in (LdpPolicy.ALL_PREFIXES, LdpPolicy.LOOPBACK_ONLY):
            for internal in (True, False):
                assert not expected_visibility(
                    ldp, internal, True
                ).frpla_shift
                assert expected_visibility(
                    ldp, internal, False
                ).frpla_shift


class TestTechniqueApplicability:
    def test_cisco_row(self):
        row = technique_applicability("cisco")
        assert row.ldp is LdpPolicy.ALL_PREFIXES
        assert row.frpla is True
        assert row.rtla is False
        assert row.dpr is False
        assert row.brpr is True

    def test_juniper_row(self):
        row = technique_applicability("juniper")
        assert row.ldp is LdpPolicy.LOOPBACK_ONLY
        assert row.rtla is True
        assert row.dpr is True
        assert row.frpla == "partial"
        assert row.brpr == "partial"

    def test_unknown_brand(self):
        with pytest.raises(KeyError):
            technique_applicability("brocade")
