"""End-to-end chaos tests: campaigns under every fault profile.

The contract under test (ISSUE: chaos measurement plane): every
shipped fault profile completes a campaign without a traceback and
with a populated ``data_quality`` annotation; the zero-fault profile
changes nothing; checkpoint→kill→resume under faults is bit-identical
to the uninterrupted faulty run; and a budget that dies mid-revelation
keeps the partial revelation, marks it incomplete, and resumes to the
full result.
"""

import pytest

from repro.core.brpr import backward_recursive_revelation
from repro.core.revelation import reveal_tunnel
from repro.core.technique import default_techniques
from repro.experiments.common import CampaignContext, ContextConfig
from repro.faults import FAULT_PROFILES
from repro.measure.service import BudgetExceeded
from repro.obs import measurement_counters
from repro.store import RESUME_EXEMPT_COUNTERS
from repro.synth.gns3 import build_gns3

#: Small-but-complete campaign (mirrors ``tools/chaos_soak.py``):
#: every phase runs and revelations happen under every profile.
BASE = dict(
    scale=0.4,
    seed=11,
    vantage_points=3,
    stubs_per_transit=2,
    max_retries=1,
    breaker_threshold=3,
)

RESULT_FIELDS = (
    "traces",
    "pings",
    "pairs",
    "revelations",
    "probes_sent",
    "revelation_probes",
)


def _build(profile, probe_budget=None, checkpoint_dir=None,
           resume=False):
    return CampaignContext(
        ContextConfig(
            fault_profile=profile,
            probe_budget=probe_budget,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            **BASE,
        )
    )


def _counters(context):
    counters = dict(
        measurement_counters(
            context.campaign.obs.metrics.counters_snapshot()
        )
    )
    for name in RESUME_EXEMPT_COUNTERS:
        counters.pop(name, None)
    return counters


def _assert_results_equal(left, right):
    for name in RESULT_FIELDS:
        assert getattr(left, name) == getattr(right, name), name
    assert left.quarantine == right.quarantine
    assert left.data_quality == right.data_quality


class TestEveryProfileDegradesGracefully:
    @pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
    def test_campaign_survives_with_data_quality(self, profile):
        context = _build(profile)
        result = context.result
        assert not result.partial  # no budget: must run to the end
        quality = result.data_quality
        assert quality["grade"] in ("high", "degraded", "poor")
        # Grading enumerates the technique registry, so every shipped
        # technique (including new entrants like tnt) gets a score.
        assert set(quality["techniques"]) == set(
            default_techniques().names()
        )
        assert quality["counters"]["probes"] > 0
        if FAULT_PROFILES[profile].inert:
            assert quality["counters"]["faults_injected"] == 0
        elif profile != "flap":  # flap mutates routes, not replies
            assert quality["counters"]["faults_injected"] > 0
        assert result.traces  # degraded, never empty


class TestZeroFaultTransparency:
    def test_none_profile_equals_clean_campaign(self):
        clean = _build(None)
        wrapped = _build("none")
        _assert_results_equal(wrapped.result, clean.result)
        assert _counters(wrapped) == _counters(clean)


class TestFaultyResume:
    @pytest.mark.parametrize("profile", ["hostile", "flap"])
    def test_resume_is_bit_identical(self, profile, tmp_path):
        warehouse = str(tmp_path / f"warehouse-{profile}")
        baseline = _build(profile)
        total = (
            baseline.result.probes_sent
            + baseline.result.revelation_probes
        )
        interrupted = _build(
            profile, probe_budget=total // 2,
            checkpoint_dir=warehouse,
        )
        assert interrupted.result.partial
        resumed = _build(
            profile, checkpoint_dir=warehouse, resume=True
        )
        assert not resumed.result.partial
        _assert_results_equal(resumed.result, baseline.result)
        assert _counters(resumed) == _counters(baseline)


class TestBudgetMidRevelation:
    def test_partial_revelation_kept_and_resumable(self, tmp_path):
        warehouse = str(tmp_path / "warehouse")
        baseline = _build("loss-light")
        # Land the exhaustion inside the revelation phase.
        budget = (
            baseline.result.probes_sent
            + baseline.result.revelation_probes // 2
        )
        interrupted = _build(
            "loss-light", probe_budget=budget,
            checkpoint_dir=warehouse,
        )
        result = interrupted.result
        assert result.partial
        assert "campaign" in result.stop_reason
        incomplete = [
            revelation
            for revelation in result.revelations.values()
            if not revelation.complete
        ]
        assert len(incomplete) == 1
        # The aborted recursion's finds survive, flagged incomplete.
        full = baseline.result.revelations
        for revelation in incomplete:
            key = (revelation.ingress, revelation.egress)
            assert set(revelation.revealed) <= set(
                full[key].revealed
            )
        resumed = _build(
            "loss-light", checkpoint_dir=warehouse, resume=True
        )
        assert all(
            revelation.complete
            for revelation in resumed.result.revelations.values()
        )
        _assert_results_equal(resumed.result, baseline.result)


class TestScopedBudgetExhaustion:
    """Satellite: budget death inside the revelation recursions."""

    def _testbed(self):
        return build_gns3("backward-recursive")

    def _endpoints(self, testbed):
        return (
            testbed.address("PE1.left"),
            testbed.address("PE2.left"),
        )

    def test_brpr_keeps_partial_on_exhaustion(self):
        full = self._testbed()
        ingress, egress = self._endpoints(full)
        complete = backward_recursive_revelation(
            full.prober, full.vantage_point, ingress, egress
        )
        assert complete.success
        first_cost = len(complete.steps[0].trace.hops)

        testbed = self._testbed()
        # Enough for the first recursion step plus one probe: the
        # second trace dies mid-flight.
        testbed.prober.service.configure(
            scope_budgets={"brpr": first_cost + 1}
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            backward_recursive_revelation(
                testbed.prober, testbed.vantage_point,
                ingress, egress,
            )
        exc = excinfo.value
        assert exc.scope == "brpr"
        partial = exc.partial_brpr
        assert partial is not None
        assert not partial.complete
        assert partial.revealed  # the first step's find is kept
        assert set(partial.revealed) < set(complete.revealed)
        metrics = testbed.prober.obs.metrics
        assert metrics.get("brpr.incomplete") == 1

    def test_revelation_keeps_partial_on_exhaustion(self):
        full = self._testbed()
        ingress, egress = self._endpoints(full)
        complete = reveal_tunnel(
            full.prober, full.vantage_point, ingress, egress
        )
        assert complete.complete
        first_cost = complete.probes_used // complete.traces_used

        testbed = self._testbed()
        testbed.prober.service.configure(
            scope_budgets={"revelation": first_cost + 1}
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            reveal_tunnel(
                testbed.prober, testbed.vantage_point,
                ingress, egress,
            )
        exc = excinfo.value
        assert exc.scope == "revelation"
        partial = exc.partial_revelation
        assert partial is not None
        assert not partial.complete
        assert set(partial.revealed) < set(complete.revealed)
        metrics = testbed.prober.obs.metrics
        assert metrics.get("revelation.incomplete") == 1
