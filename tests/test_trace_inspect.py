"""Tests for the standalone trace inspector in ``tools/``."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = (
    Path(__file__).resolve().parent.parent / "tools" / "trace_inspect.py"
)


@pytest.fixture(scope="module")
def trace_inspect():
    spec = importlib.util.spec_from_file_location("trace_inspect", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _records():
    return [
        {"kind": "phase.start", "phase": "trace"},
        {"kind": "probe.sent", "vp": "A", "dst": 1, "ttl": 2,
         "flow": 9, "probe": "traceroute"},
        {"kind": "cache.miss", "origin": "A", "dst": 1, "flow": 9},
        {"kind": "cache.hit", "origin": "A", "dst": 1, "flow": 9},
        {"kind": "cache.hit", "origin": "A", "dst": 1, "flow": 9},
        {"kind": "phase.end", "phase": "trace", "seconds": 0.5},
        {"kind": "probe.sent", "vp": "A", "dst": 2, "ttl": 2,
         "flow": 9, "probe": "ping"},
        {"kind": "revelation.verdict", "ingress": 1, "egress": 2,
         "method": "brpr", "revealed": 3},
        {"kind": "technique.verdict", "technique": "dpr",
         "success": True},
        {"kind": "technique.verdict", "technique": "dpr",
         "success": False},
        {"kind": "span", "name": "engine.walk", "span": 1,
         "parent": None, "ms": 2.0},
        {"kind": "span", "name": "engine.walk", "span": 2,
         "parent": None, "ms": 4.0},
    ]


class TestSummarize:
    def test_probes_bracketed_by_phase(self, trace_inspect):
        summary = trace_inspect.summarize(_records())
        assert summary["probes_per_phase"] == {
            "trace": 1, "(outside)": 1,
        }
        assert summary["phase_seconds"] == {"trace": 0.5}

    def test_cache_ratio_from_events(self, trace_inspect):
        summary = trace_inspect.summarize(_records())
        assert summary["cache"] == {
            "hits": 2, "misses": 1,
            "hit_ratio": pytest.approx(2 / 3),
        }

    def test_cache_falls_back_to_metrics_counters(self, trace_inspect):
        records = [{
            "kind": "campaign.metrics",
            "counters": {
                "engine.trajectory_hits": 8,
                "engine.trajectory_misses": 2,
            },
        }]
        summary = trace_inspect.summarize(records)
        assert summary["cache"]["hit_ratio"] == pytest.approx(0.8)

    def test_revelation_and_technique_outcomes(self, trace_inspect):
        summary = trace_inspect.summarize(_records())
        assert summary["revelation_methods"] == {"brpr": 1}
        assert summary["technique_verdicts"] == {
            "dpr": {"success": 1, "failure": 1},
        }

    def test_span_aggregation(self, trace_inspect):
        summary = trace_inspect.summarize(_records())
        assert summary["spans"]["engine.walk"] == {
            "count": 2, "total_ms": 6.0, "mean_ms": 3.0,
        }


class TestRenderAndMain:
    def test_render_mentions_every_section(self, trace_inspect):
        text = trace_inspect.render(trace_inspect.summarize(_records()))
        assert "Probes per phase" in text
        assert "72" not in text  # sanity: numbers come from input
        assert "66.7% hit ratio" in text
        assert "dpr          1/2 successful" in text

    def test_main_reads_jsonl(self, trace_inspect, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in _records()) + "\n"
            + "not json\n"
        )
        assert trace_inspect.main(["trace_inspect", str(path)]) == 0
        assert "Campaign trace summary" in capsys.readouterr().out

    def test_main_rejects_empty_file(
        self, trace_inspect, tmp_path, capsys
    ):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert trace_inspect.main(["trace_inspect", str(path)]) == 1

    def test_empty_file_still_prints_zero_record_summary(
        self, trace_inspect, tmp_path, capsys
    ):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        trace_inspect.main(["trace_inspect", str(path)])
        captured = capsys.readouterr()
        assert "Campaign trace summary" in captured.out
        assert "no probe.sent events" in captured.out
        assert "no records found" in captured.err

    def test_missing_file_is_a_clean_error(
        self, trace_inspect, tmp_path, capsys
    ):
        path = tmp_path / "does-not-exist.jsonl"
        assert trace_inspect.main(["trace_inspect", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_truncated_and_non_object_lines_are_skipped(
        self, trace_inspect, tmp_path, capsys
    ):
        path = tmp_path / "trunc.jsonl"
        path.write_text(
            json.dumps({"kind": "probe.sent"}) + "\n"
            + "42\n"                      # JSON, but not an object
            + '"stray string"\n'
            + '[1, 2, 3]\n'
            + '{"kind": "phase.sta'       # truncated mid-write
        )
        assert trace_inspect.main(["trace_inspect", str(path)]) == 0
        summary = trace_inspect.summarize(
            trace_inspect.load_records(str(path))
        )
        assert summary["probes_per_phase"] == {"(outside)": 1}
