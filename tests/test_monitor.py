"""The monitoring loop: incremental safety, timelines, resume.

Three acceptance contracts from the monitoring subsystem:

1. **Incremental safety** — with churn confined to a known AS, every
   epoch's merged tunnel inventory must be byte-identical to a full
   re-campaign of the same evolved internet, while skipping pairs and
   spending measurably fewer probes.
2. **Timeline correctness** — a scripted churn schedule (TE install
   plus LDP flip at epoch 2, a second LDP flip at epoch 3, teardown
   plus flip-back at epoch 4) must fold into exactly the expected
   born/died lifecycle events, and the same seed + profile must fold
   to a byte-identical timeline document.
3. **Resumability** — a chain killed mid-epoch by a probe budget must
   resume into per-epoch artefacts byte-identical to an uninterrupted
   twin chain (the PR-4/5 checkpoint machinery, composed).
"""

import json
from pathlib import Path

import pytest

from repro.monitor import MonitorConfig, MonitorLoop
from repro.store import (
    MONITOR_SCHEMA,
    chain_snapshots,
    fold_timeline,
    snapshot_tunnels,
)
from repro.synth import ChurnModel, ChurnProfile, churn_profile
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import scaled_profiles

REPO_ROOT = Path(__file__).resolve().parent.parent


def _twin_internet():
    """An internet identical to the one MonitorLoop builds itself."""
    return build_internet(
        InternetConfig(
            profiles=tuple(scaled_profiles(0.3)),
            vantage_points=4,
            stubs_per_transit=3,
            seed=2017,
        )
    )


def _inventories(warehouse, chain):
    """Per-epoch tunnel inventories as canonical JSON strings."""
    snapshots = chain_snapshots(warehouse, chain=chain)[chain]
    return [
        json.dumps(snapshot_tunnels(snapshot), sort_keys=True)
        for snapshot in snapshots
    ]


class TestIncrementalSafety:
    @pytest.fixture(scope="class")
    def arms(self, tmp_path_factory):
        """Incremental and full chains under AS-confined churn."""
        asn = sorted(_twin_internet().transit_asns)[0]
        profile = churn_profile("turbulent").restricted_to((asn,))
        runs = {}
        for label, incremental in (("inc", True), ("full", False)):
            warehouse = str(tmp_path_factory.mktemp(f"wh-{label}"))
            loop = MonitorLoop(
                MonitorConfig(
                    warehouse=warehouse,
                    epochs=3,
                    churn_profile=profile,
                    incremental=incremental,
                )
            )
            report = loop.run()
            assert not report.partial
            runs[label] = (loop, report, warehouse)
        return runs

    def test_inventories_byte_identical_to_full_recampaign(self, arms):
        inc_loop, inc_report, inc_wh = arms["inc"]
        _, full_report, full_wh = arms["full"]
        assert _inventories(inc_wh, inc_report.chain) == _inventories(
            full_wh, full_report.chain
        )

    def test_pairs_skipped_and_probes_saved(self, arms):
        inc_loop, inc_report, _ = arms["inc"]
        _, full_report, _ = arms["full"]
        assert inc_loop.obs.metrics.get("monitor.pairs_skipped") > 0
        inc_probes = sum(
            outcome.campaign_probes + outcome.evidence_probes
            for outcome in inc_report.epochs
        )
        full_probes = sum(
            outcome.campaign_probes for outcome in full_report.epochs
        )
        assert inc_probes < full_probes

    def test_saving_recorded_in_bench_snapshot(self):
        """The committed perf snapshot pins the same contract."""
        snapshot = json.loads(
            (REPO_ROOT / "BENCH_perf.json").read_text()
        )
        section = snapshot["monitor_incremental_speedup"]
        assert section["tunnels_identical"] is True
        assert section["pairs_carried"] > 0
        assert section["probe_ratio"] < 1.0

    def test_incremental_and_full_chains_are_distinct(self, arms):
        _, inc_report, _ = arms["inc"]
        _, full_report, _ = arms["full"]
        assert inc_report.chain != full_report.chain


def _reference_events(inventories):
    """Independent lifecycle fold: set of (pair, epoch, event)."""
    events = set()
    for position in range(1, len(inventories)):
        before, after = inventories[position - 1], inventories[position]
        for pair in set(before) | set(after):
            b, a = before.get(pair), after.get(pair)
            if b is None and a is not None:
                events.add((pair, position, "born"))
            elif b is not None and a is None:
                events.add((pair, position, "died"))
            elif b is not None and a is not None:
                if b.get("length") != a.get("length"):
                    events.add((pair, position, "resized"))
                if (b.get("method"), b.get("technique")) != (
                    a.get("method"),
                    a.get("technique"),
                ):
                    events.add((pair, position, "technique-changed"))
    return events


class TestTimelineLifecycle:
    @pytest.fixture(scope="class")
    def scripted(self, tmp_path_factory):
        """A 5-epoch calm chain driven purely by a scripted schedule.

        The lifecycle drivers are LDP policy flips: the epoch-2 flip
        hits the ingress LER of a transit-AS router run that a
        baseline campaign observes *visibly* (every hop responding),
        turning the run into an invisible tunnel and birthing a
        brand-new candidate pair; the epoch-4 flip-back kills it
        again.  The epoch-3 flip hits the ingress LER of a tunnel
        revealed since epoch 0, turning it explicit and ending that
        pair mid-chain.  The TE install/teardown ride along on a
        churn-scouted head/tail off the probed paths: a UHP
        no-propagate RSVP-TE tunnel hides its own tail (the AS-exit
        PE), so it can never satisfy the same-AS candidate-pair
        heuristic (the paper's Sec 3.4 finding that DPR/BRPR never
        reveal RSVP-TE); here it exercises the staleness engine's
        as-churned re-probing without moving the inventory.
        """
        from repro.campaign.orchestrator import Campaign, CampaignConfig

        scout = ChurnModel(
            _twin_internet(),
            ChurnProfile(name="te-scout", te_installs=1),
            seed=3,
        )
        (scouted,) = scout.advance(1)
        te_head, te_tail = scouted.target.split("->")

        baseline = _twin_internet()
        campaign = Campaign(
            baseline.prober,
            baseline.vps,
            baseline.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(baseline.transit_asns)
            ),
        )
        result = campaign.run(baseline.campaign_targets())
        born_router, _ = self._visible_transit_run(baseline, result)
        revealed = result.successful_revelations()
        assert revealed
        ingress = sorted(
            (revelation.ingress, revelation.egress)
            for revelation in revealed
        )[0][0]
        flip_router = baseline.router_of_address(ingress).name

        schedule = {
            2: [
                {"kind": "te-install", "head": te_head, "tail": te_tail},
                {"kind": "ldp-policy", "router": born_router},
            ],
            3: [{"kind": "ldp-policy", "router": flip_router}],
            4: [
                {"kind": "te-teardown", "head": te_head, "tail": te_tail},
                {"kind": "ldp-policy", "router": born_router},
            ],
        }
        documents = []
        for attempt in range(2):
            warehouse = str(tmp_path_factory.mktemp(f"wh-tl{attempt}"))
            loop = MonitorLoop(
                MonitorConfig(
                    warehouse=warehouse,
                    epochs=5,
                    churn_profile="calm",
                    schedule=schedule,
                )
            )
            report = loop.run()
            assert not report.partial
            snapshots = chain_snapshots(
                warehouse, chain=report.chain
            )[report.chain]
            documents.append(
                (fold_timeline(snapshots), snapshots, report)
            )
        return documents

    @staticmethod
    def _visible_transit_run(internet, result):
        """First ≥3-router same-transit-AS visible run on any trace.

        Flipping the run's first router (the ingress LER that pushes
        the label stack) to no-TTL-propagate demonstrably changes
        what probes see: the run's interior was visible before the
        flip and is hidden (a fresh candidate pair) after it.
        """
        routers = internet.network.routers
        for trace in result.traces:
            hops = [
                hop for hop in trace.hops if hop.responder_router
            ]
            start = 0
            while start < len(hops):
                asn = routers[hops[start].responder_router].asn
                stop = start
                while (
                    stop < len(hops)
                    and routers[hops[stop].responder_router].asn == asn
                ):
                    stop += 1
                if asn in internet.transit_asns and stop - start >= 3:
                    return (
                        hops[start].responder_router,
                        hops[stop - 1].responder_router,
                    )
                start = stop
        raise AssertionError("no visible transit run on any trace")

    def test_schema_and_epoch_count(self, scripted):
        document, _, report = scripted[0]
        assert document["schema"] == MONITOR_SCHEMA
        assert document["chain"]["id"] == report.chain
        assert document["chain"]["epochs"] == 5
        assert [
            head["epoch"] for head in document["epochs"]
        ] == list(range(5))

    def test_scripted_events_produce_expected_lifecycle(self, scripted):
        document, snapshots, _ = scripted[0]
        events = {
            ((entry["ingress"], entry["egress"]), event["epoch"],
             event["event"])
            for entry in document["pairs"]
            for event in entry["events"]
        }
        born_at_2 = {pair for (pair, e, k) in events if (e, k) == (2, "born")}
        died_at_4 = {pair for (pair, e, k) in events if (e, k) == (4, "died")}
        assert born_at_2, "the epoch-2 LDP flip must birth a tunnel"
        assert born_at_2 & died_at_4, (
            "the epoch-2 tunnel must die at the epoch-4 flip-back"
        )
        epoch3 = {e for e in events if e[1] == 3}
        assert epoch3, "the LDP flip at epoch 3 must move a pair"

    def test_fold_matches_independent_reference(self, scripted):
        document, snapshots, _ = scripted[0]
        inventories = [
            {
                (tunnel["ingress"], tunnel["egress"]): tunnel
                for tunnel in snapshot_tunnels(snapshot)
            }
            for snapshot in snapshots
        ]
        expected = _reference_events(inventories)
        folded = {
            ((entry["ingress"], entry["egress"]), event["epoch"],
             event["event"])
            for entry in document["pairs"]
            for event in entry["events"]
        }
        assert folded == expected

    def test_same_seed_folds_byte_identical(self, scripted):
        first, _, _ = scripted[0]
        second, _, _ = scripted[1]
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_per_as_churn_rates_cover_eventful_ases(self, scripted):
        document, _, _ = scripted[0]
        eventful = {
            entry["asn"]
            for entry in document["pairs"]
            if entry["events"] and entry["asn"] is not None
        }
        rated = {
            row["asn"]
            for row in document["per_as"]
            if row["churn_rate"] > 0
        }
        assert eventful <= rated


class TestResume:
    def test_budget_kill_then_resume_is_bit_identical(
        self, tmp_path_factory
    ):
        baseline_wh = str(tmp_path_factory.mktemp("wh-base"))
        baseline = MonitorLoop(
            MonitorConfig(
                warehouse=baseline_wh, epochs=2, churn_profile="gentle"
            )
        )
        baseline_report = baseline.run()
        assert not baseline_report.partial
        epoch0_probes = baseline_report.epochs[0].campaign_probes

        interrupted_wh = str(tmp_path_factory.mktemp("wh-int"))
        interrupted = MonitorLoop(
            MonitorConfig(
                warehouse=interrupted_wh,
                epochs=2,
                churn_profile="gentle",
                probe_budget=epoch0_probes // 2,
            )
        ).run()
        assert interrupted.partial
        assert "resume" in interrupted.stop_reason
        assert interrupted.epochs[-1].partial

        resumed = MonitorLoop(
            MonitorConfig(
                warehouse=interrupted_wh, epochs=2,
                churn_profile="gentle",
            )
        ).run()
        assert not resumed.partial
        assert resumed.chain == baseline_report.chain
        assert resumed.epochs[0].resumed

        for outcome, twin in zip(
            resumed.epochs, baseline_report.epochs
        ):
            assert outcome.key == twin.key
            a = Path(interrupted_wh) / outcome.snapshot_dir
            b = Path(baseline_wh) / twin.snapshot_dir
            assert (a / "result.json").read_bytes() == (
                b / "result.json"
            ).read_bytes()
        base_chain = chain_snapshots(
            baseline_wh, chain=baseline_report.chain
        )[baseline_report.chain]
        resumed_chain = chain_snapshots(
            interrupted_wh, chain=resumed.chain
        )[resumed.chain]
        assert json.dumps(
            fold_timeline(resumed_chain), sort_keys=True
        ) == json.dumps(fold_timeline(base_chain), sort_keys=True)

    def test_completed_chain_reruns_from_cache(self, tmp_path):
        warehouse = str(tmp_path / "wh")
        config = MonitorConfig(
            warehouse=warehouse, epochs=2, churn_profile="gentle"
        )
        first = MonitorLoop(config).run()
        again = MonitorLoop(config)
        report = again.run()
        assert [outcome.key for outcome in report.epochs] == [
            outcome.key for outcome in first.epochs
        ]
        assert all(outcome.skipped for outcome in report.epochs)
        assert again.obs.metrics.get("monitor.epochs_skipped") == 2


class TestGuards:
    def test_mutating_fault_profile_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mutates"):
            MonitorLoop(
                MonitorConfig(
                    warehouse=str(tmp_path), fault_profile="flap"
                )
            )

    def test_hostile_fault_profile_composes(self, tmp_path):
        """Non-mutating chaos under the monitor completes a chain."""
        loop = MonitorLoop(
            MonitorConfig(
                warehouse=str(tmp_path / "wh"),
                epochs=2,
                churn_profile="calm",
                fault_profile="hostile",
            )
        )
        report = loop.run()
        assert not report.partial
        sidecar = json.loads(
            (
                Path(str(tmp_path / "wh"))
                / report.epochs[0].snapshot_dir
                / "monitor.json"
            ).read_text()
        )
        assert sidecar["schema"] == MONITOR_SCHEMA
        assert sidecar["kind"] == "epoch"

    def test_unknown_churn_profile_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown churn profile"):
            MonitorLoop(
                MonitorConfig(
                    warehouse=str(tmp_path), churn_profile="tsunami"
                )
            )
