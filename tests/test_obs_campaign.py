"""Observability contracts at the campaign level.

Pins the counter namespace invariance (measurement counters identical
between serial and ``workers=2`` runs), the per-phase cache
attribution, the report's edge cases, the span coverage of the
revelation techniques on the GNS3 golden scenarios, and the CLI's
``--trace-out`` / ``--metrics-out`` artefacts.
"""

import json

import pytest

from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    PerfStats,
)
from repro.campaign.report import render_perf_section
from repro.cli import main
from repro.core.brpr import backward_recursive_revelation
from repro.core.dpr import direct_path_revelation
from repro.core.revelation import reveal_tunnel
from repro.obs import (
    DEBUG,
    INFO,
    RingBufferSink,
    get_event_log,
    measurement_counters,
)
from repro.synth.gns3 import build_gns3
from repro.synth.internet import InternetConfig, build_internet


def _run_campaign(workers):
    internet = build_internet(InternetConfig(seed=77))
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(
            suspicious_asns=tuple(internet.transit_asns),
            workers=workers,
        ),
    )
    result = campaign.run(internet.campaign_targets())
    return campaign, result


@pytest.fixture(scope="module")
def serial_and_parallel():
    return _run_campaign(1), _run_campaign(2)


class TestCounterInvariance:
    def test_measurement_counters_identical(self, serial_and_parallel):
        (serial, _), (parallel, _) = serial_and_parallel
        serial_counters = measurement_counters(
            serial.obs.metrics.counters
        )
        parallel_counters = measurement_counters(
            parallel.obs.metrics.counters
        )
        assert serial_counters == parallel_counters
        # And they are not trivially empty.
        assert serial_counters["probe.sent.traceroute"] > 0
        assert serial_counters["revelation.attempts"] > 0

    def test_parallel_run_records_prewarm_activity(
        self, serial_and_parallel
    ):
        (serial, _), (parallel, _) = serial_and_parallel
        serial_counters = serial.obs.metrics.counters
        parallel_counters = parallel.obs.metrics.counters
        assert parallel_counters["prewarm.rounds"] > 0
        assert (
            parallel_counters["prewarm.probe.sent.traceroute"] > 0
        )
        assert not any(
            name.startswith("prewarm.") for name in serial_counters
        )

    def test_execution_counters_differ_as_expected(
        self, serial_and_parallel
    ):
        (serial, _), (parallel, _) = serial_and_parallel
        # The prewarmed parent replays mostly from cache: more hits,
        # fewer misses than the cold serial run — the exact reason
        # engine.* is excluded from the invariance contract.
        assert (
            parallel.obs.metrics.get("engine.trajectory_hits")
            > serial.obs.metrics.get("engine.trajectory_hits")
        )


class TestPhaseAttribution:
    def test_phase_counters_match_registry(self, serial_and_parallel):
        (campaign, result), _ = serial_and_parallel
        metrics = campaign.obs.metrics
        assert set(result.perf.phase_counters) == {
            "trace", "ping", "extract", "revelation",
        }
        for phase, counters in result.perf.phase_counters.items():
            assert counters["trajectory_hits"] == metrics.get(
                f"phase.{phase}.trajectory_hits"
            )
            assert counters["trajectory_misses"] == metrics.get(
                f"phase.{phase}.trajectory_misses"
            )
            assert metrics.gauge(f"phase.{phase}.seconds") >= 0.0

    def test_phase_deltas_sum_to_run_totals(self, serial_and_parallel):
        (_, result), _ = serial_and_parallel
        hits = sum(
            c["trajectory_hits"]
            for c in result.perf.phase_counters.values()
        )
        misses = sum(
            c["trajectory_misses"]
            for c in result.perf.phase_counters.values()
        )
        assert hits == result.perf.trajectory_hits
        assert misses == result.perf.trajectory_misses


class TestPerfSectionEdgeCases:
    def test_default_perf_stats_render(self):
        section = render_perf_section(CampaignResult())
        assert "## Performance" in section
        assert "workers" in section
        assert "phase" not in section  # no phases recorded
        assert "0.0%" in section  # hit rate defined at zero probes

    def test_zero_probe_campaign(self):
        internet = build_internet(InternetConfig(seed=78))
        campaign = Campaign(
            internet.prober,
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(),
        )
        result = campaign.run([])
        assert result.probes_sent == 0
        section = render_perf_section(result)
        assert "trace phase" in section
        assert "(0 hits, 0 misses)" in section

    def test_per_phase_rows_show_cache_deltas(self):
        result = CampaignResult()
        result.perf = PerfStats(
            phase_seconds={"trace": 1.0},
            phase_counters={
                "trace": {
                    "trajectory_hits": 3, "trajectory_misses": 4,
                },
            },
        )
        section = render_perf_section(result)
        assert "1.000 s (3 hits, 4 misses)" in section


class TestGoldenScenarioSpans:
    @pytest.fixture()
    def capture(self):
        log = get_event_log()
        sink = RingBufferSink()
        log.attach(sink)
        log.set_level(DEBUG)
        yield sink
        log.detach(sink)
        log.set_level(INFO)

    def test_revelation_techniques_produce_spans(self, capture):
        testbed = build_gns3("backward-recursive")
        ingress = testbed.address("PE1.left")
        egress = testbed.address("PE2.left")
        reveal_tunnel(
            testbed.prober, testbed.vantage_point,
            ingress=ingress, egress=egress,
        )
        direct_path_revelation(
            testbed.prober, testbed.vantage_point,
            ingress=ingress, egress=egress,
        )
        backward_recursive_revelation(
            testbed.prober, testbed.vantage_point,
            ingress=ingress, egress=egress,
        )
        names = {
            record["name"] for record in capture.of_kind("span")
        }
        assert {
            "revelation.reveal", "revelation.dpr", "revelation.brpr",
            "probe.traceroute",
        } <= names

    def test_revelation_steps_and_verdicts_logged(self, capture):
        testbed = build_gns3("backward-recursive")
        revelation = reveal_tunnel(
            testbed.prober, testbed.vantage_point,
            ingress=testbed.address("PE1.left"),
            egress=testbed.address("PE2.left"),
        )
        steps = capture.of_kind("revelation.step")
        assert len(steps) == revelation.traces_used
        (verdict,) = capture.of_kind("revelation.verdict")
        assert verdict["method"] == revelation.method.value
        assert verdict["revealed"] == len(revelation.revealed)


class TestCliArtefacts:
    def teardown_method(self):
        get_event_log().set_level(INFO)

    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        # Unique seed: campaign_context is cached, and a cache hit
        # would replay no events into the fresh sink.
        code = main([
            "campaign", "--scale", "0.3", "--seed", "910037",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        span_names = {
            r["name"] for r in records if r["kind"] == "span"
        }
        assert "campaign.run" in span_names
        assert "revelation.reveal" in span_names
        assert any(r["kind"] == "campaign.metrics" for r in records)
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["campaign.runs"] == 1
        assert metrics["counters"]["probe.sent.traceroute"] > 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "metrics written to" in out

    def test_prometheus_suffix(self, tmp_path):
        path = tmp_path / "metrics.prom"
        code = main([
            "campaign", "--scale", "0.3", "--seed", "910038",
            "--metrics-out", str(path),
        ])
        assert code == 0
        assert path.read_text().startswith("# TYPE repro_")

    def test_verbose_flag_accepted(self, capsys):
        assert main(["-v", "list"]) == 0
        assert "fig01" in capsys.readouterr().out
