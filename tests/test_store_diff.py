"""Longitudinal diffing between campaign snapshots.

Two seeded topologies stand in for the same network captured months
apart: the tunnels that only exist under one seed are the churn a
longitudinal campaign is after.  The tests pin the diff document's
schema, the result.json-vs-raw-records sourcing fallback, and the CLI
path resolution rules.
"""

import json
import os
import shutil

import pytest

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.store import (
    DIFF_SCHEMA,
    CampaignCheckpoint,
    diff_snapshots,
    render_diff,
    resolve_snapshot,
    result_document,
    snapshot_tunnels,
)
from repro.synth.internet import InternetConfig, build_internet


def _checkpointed_run(root, seed):
    internet = build_internet(InternetConfig(seed=seed))
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(
            suspicious_asns=tuple(internet.transit_asns)
        ),
    )
    checkpoint = CampaignCheckpoint(
        str(root), {"kind": "synthetic-internet", "seed": seed}
    )
    result = campaign.run(
        internet.campaign_targets(), checkpoint=checkpoint
    )
    checkpoint.snapshot.write_result(result_document(result))
    return result, checkpoint.snapshot


@pytest.fixture(scope="module")
def two_snapshots(tmp_path_factory):
    root_a = tmp_path_factory.mktemp("warehouse-a")
    root_b = tmp_path_factory.mktemp("warehouse-b")
    result_a, snapshot_a = _checkpointed_run(root_a, seed=77)
    result_b, snapshot_b = _checkpointed_run(root_b, seed=78)
    return (result_a, snapshot_a), (result_b, snapshot_b)


class TestDiffDocument:
    def test_schema_and_heads(self, two_snapshots):
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_b)
        assert document["schema"] == DIFF_SCHEMA
        assert document["a"]["path"] == str(snapshot_a.path)
        assert document["b"]["path"] == str(snapshot_b.path)
        assert document["a"]["from_result_summary"]
        assert document["a"]["key"] != document["b"]["key"]
        json.dumps(document)  # must be serialisable as-is

    def test_churn_is_nonempty_across_seeds(self, two_snapshots):
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_b)
        summary = document["summary"]
        assert summary["appeared"] > 0
        assert summary["disappeared"] > 0
        tunnels = document["tunnels"]
        assert len(tunnels["appeared"]) == summary["appeared"]
        assert len(tunnels["disappeared"]) == summary["disappeared"]
        assert (
            len(tunnels["length_changed"])
            == summary["length_changed"]
        )

    def test_summary_counts_are_consistent(self, two_snapshots):
        (result_a, snapshot_a), (result_b, snapshot_b) = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_b)
        summary = document["summary"]
        assert (
            summary["disappeared"]
            + summary["length_changed"]
            + summary["unchanged"]
            == len(result_a.successful_revelations())
        )
        assert (
            summary["appeared"]
            + summary["length_changed"]
            + summary["unchanged"]
            == len(result_b.successful_revelations())
        )

    def test_identical_snapshots_diff_clean(self, two_snapshots):
        (result_a, snapshot_a), _ = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_a)
        summary = document["summary"]
        assert summary["appeared"] == 0
        assert summary["disappeared"] == 0
        assert summary["length_changed"] == 0
        assert summary["unchanged"] == len(
            result_a.successful_revelations()
        )

    def test_render_mentions_every_bucket(self, two_snapshots):
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        text = render_diff(diff_snapshots(snapshot_a, snapshot_b))
        assert "Tunnel churn" in text
        assert "appeared:" in text
        assert "disappeared:" in text
        assert "  + " in text
        assert "  - " in text

    def test_zero_churn_render_has_no_tunnel_rows(self, two_snapshots):
        """Diffing a snapshot against itself renders only the
        all-zero summary — no +/-/~ rows, no spurious per-AS deltas."""
        (result_a, snapshot_a), _ = two_snapshots
        text = render_diff(diff_snapshots(snapshot_a, snapshot_a))
        assert "  appeared:       0" in text
        assert "  disappeared:    0" in text
        assert "  length changed: 0" in text
        assert (
            f"  unchanged:      "
            f"{len(result_a.successful_revelations())}" in text
        )
        for marker in ("  + ", "  - ", "  ~ "):
            assert marker not in text
        for line in text.splitlines():
            if line.startswith("  AS"):
                assert "(+0)" in line


class TestTunnelSourcing:
    def test_result_summary_preferred(self, two_snapshots):
        (result_a, snapshot_a), _ = two_snapshots
        tunnels = snapshot_tunnels(snapshot_a)
        assert len(tunnels) == len(result_a.successful_revelations())
        for tunnel in tunnels:
            assert tunnel["length"] == len(tunnel["revealed"])
            assert tunnel["length"] > 0

    def test_records_fallback_when_no_result_json(
        self, tmp_path, two_snapshots
    ):
        """An interrupted run (no result.json) is still diffable."""
        (result_a, snapshot_a), _ = two_snapshots
        from_summary = snapshot_tunnels(snapshot_a)
        result_path = os.path.join(str(snapshot_a.path), "result.json")
        payload = open(result_path, encoding="utf-8").read()
        try:
            os.unlink(result_path)
            from_records = snapshot_tunnels(snapshot_a)
            document = diff_snapshots(snapshot_a, snapshot_a)
            assert not document["a"]["from_result_summary"]
        finally:
            with open(result_path, "w", encoding="utf-8") as handle:
                handle.write(payload)
        key = lambda t: (t["ingress"], t["egress"])  # noqa: E731
        assert sorted(map(key, from_records)) == sorted(
            map(key, from_summary)
        )
        assert document["summary"]["unchanged"] == len(from_records)

    def test_records_fallback_on_both_sides(
        self, tmp_path, two_snapshots
    ):
        """Two interrupted runs (neither wrote result.json) still
        diff: tunnels come from revelation.jsonl + pairs.jsonl on
        both sides, and the per-AS section (result.json-only data)
        degrades to empty instead of crashing."""
        (result_a, snapshot_a), (_, snapshot_b) = two_snapshots
        copies = []
        for source in (snapshot_a, snapshot_b):
            target = tmp_path / source.path.name
            shutil.copytree(source.path, target)
            (target / "result.json").unlink()
            copies.append(target)
        reference = diff_snapshots(snapshot_a, snapshot_b)
        document = diff_snapshots(*copies)
        assert not document["a"]["from_result_summary"]
        assert not document["b"]["from_result_summary"]
        assert document["summary"] == reference["summary"]
        assert document["per_as"] == []
        fallback_pairs = {
            (tunnel["ingress"], tunnel["egress"], tunnel["asn"])
            for tunnel in snapshot_tunnels(resolve_snapshot(copies[0]))
        }
        summary_pairs = {
            (tunnel["ingress"], tunnel["egress"], tunnel["asn"])
            for tunnel in snapshot_tunnels(snapshot_a)
        }
        assert fallback_pairs == summary_pairs


class TestResolveSnapshot:
    def test_accepts_snapshot_dir_and_store_root(self, two_snapshots):
        (_, snapshot_a), _ = two_snapshots
        direct = resolve_snapshot(snapshot_a.path)
        via_root = resolve_snapshot(snapshot_a.path.parent)
        assert direct.path == snapshot_a.path
        assert via_root.path == snapshot_a.path

    def test_rejects_empty_and_ambiguous_roots(
        self, tmp_path, two_snapshots
    ):
        with pytest.raises(ValueError, match="no campaign snapshot"):
            resolve_snapshot(tmp_path)
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        crowded = tmp_path / "crowded"
        crowded.mkdir()
        for source in (snapshot_a, snapshot_b):
            target = crowded / source.path.name
            target.mkdir()
            (target / "MANIFEST.json").write_text(
                (source.path / "MANIFEST.json").read_text()
            )
        with pytest.raises(ValueError, match="2 snapshots"):
            resolve_snapshot(crowded)


class TestKeyPrefixResolution:
    """``repro diff warehouse/<prefix>`` path resolution."""

    @pytest.fixture()
    def crowded(self, tmp_path, two_snapshots):
        """Both snapshots' manifests under one warehouse root."""
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        root = tmp_path / "crowded"
        root.mkdir()
        for source in (snapshot_a, snapshot_b):
            target = root / source.path.name
            target.mkdir()
            (target / "MANIFEST.json").write_text(
                (source.path / "MANIFEST.json").read_text()
            )
        return root, snapshot_a, snapshot_b

    @staticmethod
    def _unique_prefix(name, other):
        """Shortest prefix of ``name`` that ``other`` doesn't share."""
        for stop in range(1, len(name) + 1):
            if not other.startswith(name[:stop]):
                return name[:stop]
        raise AssertionError(f"{other} extends {name}")

    def test_unique_dirname_prefix_resolves(self, crowded):
        root, snapshot_a, snapshot_b = crowded
        prefix = self._unique_prefix(
            snapshot_a.path.name, snapshot_b.path.name
        )
        assert len(prefix) < len(snapshot_a.path.name)
        resolved = resolve_snapshot(root / prefix)
        assert resolved.path.name == snapshot_a.path.name

    def test_full_key_prefix_resolves(self, crowded):
        """A prefix longer than the 12-char dirname matches the
        manifest's full campaign key."""
        root, snapshot_a, _ = crowded
        key = snapshot_a.manifest()["key"]
        prefix = key[: len(snapshot_a.path.name) + 8]
        assert len(prefix) > len(snapshot_a.path.name)
        resolved = resolve_snapshot(root / prefix)
        assert resolved.path.name == snapshot_a.path.name

    def test_ambiguous_prefix_lists_candidates(
        self, tmp_path, two_snapshots
    ):
        (_, snapshot_a), _ = two_snapshots
        root = tmp_path / "twins"
        root.mkdir()
        for name in ("cafe0001aaaa", "cafe0002bbbb"):
            target = root / name
            target.mkdir()
            (target / "MANIFEST.json").write_text(
                (snapshot_a.path / "MANIFEST.json").read_text()
            )
        with pytest.raises(ValueError, match="ambiguous") as excinfo:
            resolve_snapshot(root / "cafe")
        assert "cafe0001aaaa" in str(excinfo.value)
        assert "cafe0002bbbb" in str(excinfo.value)

    def test_unmatched_prefix_reports_missing_snapshot(self, crowded):
        """A prefix matching nothing is reported as a missing
        snapshot at that path, not as an ambiguity."""
        root, _, _ = crowded
        with pytest.raises(ValueError, match="no campaign snapshot"):
            resolve_snapshot(root / "zzzz")


class TestPerAsDeltas:
    @staticmethod
    def _with_per_as(source, target, rows):
        """A copy of ``source`` whose result.json carries ``rows``."""
        shutil.copytree(source.path, target)
        result_path = target / "result.json"
        document = json.loads(result_path.read_text())
        document["per_as"] = rows
        result_path.write_text(json.dumps(document))
        return resolve_snapshot(target)

    def test_one_sided_as_rows_survive(self, tmp_path, two_snapshots):
        """An AS present in only one snapshot's per-AS table still
        gets a delta row (zeros on the missing side)."""
        (_, snapshot_a), _ = two_snapshots
        side_a = self._with_per_as(
            snapshot_a,
            tmp_path / "side-a",
            [
                {
                    "asn": 100,
                    "name": "ONLY-IN-A",
                    "revealed_pairs": 2,
                    "lsr_ips": 4,
                },
                {"asn": 200, "name": "QUIET", "revealed_pairs": 0,
                 "lsr_ips": 0},
            ],
        )
        side_b = self._with_per_as(
            snapshot_a,
            tmp_path / "side-b",
            [
                {
                    "asn": 64512,
                    "name": "ONLY-IN-B",
                    "revealed_pairs": 3,
                    "lsr_ips": 5,
                }
            ],
        )
        diff = diff_snapshots(side_a, side_b)
        rows = {row["asn"]: row for row in diff["per_as"]}
        assert 200 not in rows, "all-zero ASes are elided"
        assert rows[100]["revealed_pairs_b"] == 0
        assert rows[100]["revealed_pairs_delta"] == -2
        assert rows[100]["lsr_ips_delta"] == -4
        assert rows[64512]["revealed_pairs_a"] == 0
        assert rows[64512]["revealed_pairs_delta"] == 3
        assert rows[64512]["lsr_ips_delta"] == 5
        text = render_diff(diff)
        assert "AS64512" in text
        assert "ONLY-IN-A" in text
        assert "ONLY-IN-B" in text


class TestResultDocument:
    def test_volumes_and_tunnels(self, two_snapshots):
        (result_a, snapshot_a), _ = two_snapshots
        document = snapshot_a.result()
        volumes = document["volumes"]
        assert volumes["traces"] == len(result_a.traces)
        assert volumes["pings"] == len(result_a.pings)
        assert volumes["pairs"] == len(result_a.pairs)
        assert volumes["tunnels_revealed"] == len(
            result_a.successful_revelations()
        )
        assert volumes["probes_sent"] == result_a.probes_sent
        assert document["partial"] is False
        tunnels = document["tunnels"]
        assert tunnels == sorted(
            tunnels,
            key=lambda t: (t["ingress"], t["egress"]),
        )
