"""Longitudinal diffing between campaign snapshots.

Two seeded topologies stand in for the same network captured months
apart: the tunnels that only exist under one seed are the churn a
longitudinal campaign is after.  The tests pin the diff document's
schema, the result.json-vs-raw-records sourcing fallback, and the CLI
path resolution rules.
"""

import json
import os

import pytest

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.store import (
    DIFF_SCHEMA,
    CampaignCheckpoint,
    diff_snapshots,
    render_diff,
    resolve_snapshot,
    result_document,
    snapshot_tunnels,
)
from repro.synth.internet import InternetConfig, build_internet


def _checkpointed_run(root, seed):
    internet = build_internet(InternetConfig(seed=seed))
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(
            suspicious_asns=tuple(internet.transit_asns)
        ),
    )
    checkpoint = CampaignCheckpoint(
        str(root), {"kind": "synthetic-internet", "seed": seed}
    )
    result = campaign.run(
        internet.campaign_targets(), checkpoint=checkpoint
    )
    checkpoint.snapshot.write_result(result_document(result))
    return result, checkpoint.snapshot


@pytest.fixture(scope="module")
def two_snapshots(tmp_path_factory):
    root_a = tmp_path_factory.mktemp("warehouse-a")
    root_b = tmp_path_factory.mktemp("warehouse-b")
    result_a, snapshot_a = _checkpointed_run(root_a, seed=77)
    result_b, snapshot_b = _checkpointed_run(root_b, seed=78)
    return (result_a, snapshot_a), (result_b, snapshot_b)


class TestDiffDocument:
    def test_schema_and_heads(self, two_snapshots):
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_b)
        assert document["schema"] == DIFF_SCHEMA
        assert document["a"]["path"] == str(snapshot_a.path)
        assert document["b"]["path"] == str(snapshot_b.path)
        assert document["a"]["from_result_summary"]
        assert document["a"]["key"] != document["b"]["key"]
        json.dumps(document)  # must be serialisable as-is

    def test_churn_is_nonempty_across_seeds(self, two_snapshots):
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_b)
        summary = document["summary"]
        assert summary["appeared"] > 0
        assert summary["disappeared"] > 0
        tunnels = document["tunnels"]
        assert len(tunnels["appeared"]) == summary["appeared"]
        assert len(tunnels["disappeared"]) == summary["disappeared"]
        assert (
            len(tunnels["length_changed"])
            == summary["length_changed"]
        )

    def test_summary_counts_are_consistent(self, two_snapshots):
        (result_a, snapshot_a), (result_b, snapshot_b) = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_b)
        summary = document["summary"]
        assert (
            summary["disappeared"]
            + summary["length_changed"]
            + summary["unchanged"]
            == len(result_a.successful_revelations())
        )
        assert (
            summary["appeared"]
            + summary["length_changed"]
            + summary["unchanged"]
            == len(result_b.successful_revelations())
        )

    def test_identical_snapshots_diff_clean(self, two_snapshots):
        (result_a, snapshot_a), _ = two_snapshots
        document = diff_snapshots(snapshot_a, snapshot_a)
        summary = document["summary"]
        assert summary["appeared"] == 0
        assert summary["disappeared"] == 0
        assert summary["length_changed"] == 0
        assert summary["unchanged"] == len(
            result_a.successful_revelations()
        )

    def test_render_mentions_every_bucket(self, two_snapshots):
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        text = render_diff(diff_snapshots(snapshot_a, snapshot_b))
        assert "Tunnel churn" in text
        assert "appeared:" in text
        assert "disappeared:" in text
        assert "  + " in text
        assert "  - " in text


class TestTunnelSourcing:
    def test_result_summary_preferred(self, two_snapshots):
        (result_a, snapshot_a), _ = two_snapshots
        tunnels = snapshot_tunnels(snapshot_a)
        assert len(tunnels) == len(result_a.successful_revelations())
        for tunnel in tunnels:
            assert tunnel["length"] == len(tunnel["revealed"])
            assert tunnel["length"] > 0

    def test_records_fallback_when_no_result_json(
        self, tmp_path, two_snapshots
    ):
        """An interrupted run (no result.json) is still diffable."""
        (result_a, snapshot_a), _ = two_snapshots
        from_summary = snapshot_tunnels(snapshot_a)
        result_path = os.path.join(str(snapshot_a.path), "result.json")
        payload = open(result_path, encoding="utf-8").read()
        try:
            os.unlink(result_path)
            from_records = snapshot_tunnels(snapshot_a)
            document = diff_snapshots(snapshot_a, snapshot_a)
            assert not document["a"]["from_result_summary"]
        finally:
            with open(result_path, "w", encoding="utf-8") as handle:
                handle.write(payload)
        key = lambda t: (t["ingress"], t["egress"])  # noqa: E731
        assert sorted(map(key, from_records)) == sorted(
            map(key, from_summary)
        )
        assert document["summary"]["unchanged"] == len(from_records)


class TestResolveSnapshot:
    def test_accepts_snapshot_dir_and_store_root(self, two_snapshots):
        (_, snapshot_a), _ = two_snapshots
        direct = resolve_snapshot(snapshot_a.path)
        via_root = resolve_snapshot(snapshot_a.path.parent)
        assert direct.path == snapshot_a.path
        assert via_root.path == snapshot_a.path

    def test_rejects_empty_and_ambiguous_roots(
        self, tmp_path, two_snapshots
    ):
        with pytest.raises(ValueError, match="no campaign snapshot"):
            resolve_snapshot(tmp_path)
        (_, snapshot_a), (_, snapshot_b) = two_snapshots
        crowded = tmp_path / "crowded"
        crowded.mkdir()
        for source in (snapshot_a, snapshot_b):
            target = crowded / source.path.name
            target.mkdir()
            (target / "MANIFEST.json").write_text(
                (source.path / "MANIFEST.json").read_text()
            )
        with pytest.raises(ValueError, match="2 snapshots"):
            resolve_snapshot(crowded)


class TestResultDocument:
    def test_volumes_and_tunnels(self, two_snapshots):
        (result_a, snapshot_a), _ = two_snapshots
        document = snapshot_a.result()
        volumes = document["volumes"]
        assert volumes["traces"] == len(result_a.traces)
        assert volumes["pings"] == len(result_a.pings)
        assert volumes["pairs"] == len(result_a.pairs)
        assert volumes["tunnels_revealed"] == len(
            result_a.successful_revelations()
        )
        assert volumes["probes_sent"] == result_a.probes_sent
        assert document["partial"] is False
        tunnels = document["tunnels"]
        assert tunnels == sorted(
            tunnels,
            key=lambda t: (t["ingress"], t["egress"]),
        )
