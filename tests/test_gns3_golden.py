"""Golden tests: the emulated testbed must reproduce Fig. 4 *exactly*.

The paper prints the full paris-traceroute output — responding hop,
quoted MPLS labels, and the return IP-TTL observed at the vantage point
— for four MPLS configurations on the Fig. 2 topology.  These values
pin down the entire TTL mechanic of the dataplane, so we assert them
verbatim.
"""

import pytest

from repro.synth.gns3 import build_gns3


def hops(testbed, target, **kwargs):
    """[(name, return_ttl, has_labels)] for a trace from the VP."""
    trace = testbed.traceroute(target, **kwargs)
    return [
        (testbed.name_of(h.address), h.reply_ttl, h.has_labels)
        for h in trace.hops
        if h.responded
    ]


# ---------------------------------------------------------------------------
# Fig. 4a — Default configuration: explicit tunnel.


class TestDefaultConfiguration:
    @pytest.fixture(scope="class")
    def testbed(self):
        return build_gns3("default")

    def test_trace_to_ce2_matches_fig4a(self, testbed):
        assert hops(testbed, "CE2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("P1.left", 247, True),
            ("P2.left", 248, True),
            ("P3.left", 251, True),
            ("PE2.left", 250, False),
            ("CE2.left", 249, False),
        ]

    def test_lsrs_quote_label_ttl_1(self, testbed):
        trace = testbed.traceroute("CE2.left")
        quoted = [h.quoted_labels for h in trace.hops if h.has_labels]
        assert len(quoted) == 3
        for stack in quoted:
            assert len(stack) == 1
            label, lse_ttl = stack[0]
            assert lse_ttl == 1
            assert label >= 16

    def test_consecutive_downstream_labels(self, testbed):
        # LDP allocates downstream: P1, P2, P3 advertise successive
        # labels for the same FEC (paper shows 19, 20, 21).
        trace = testbed.traceroute("CE2.left")
        labels = [h.quoted_labels[0][0] for h in trace.hops if h.has_labels]
        assert labels == sorted(labels)
        assert labels[1] == labels[0] + 1
        assert labels[2] == labels[1] + 1


# ---------------------------------------------------------------------------
# Fig. 4b — Backward Recursive configuration (no-ttl-propagate).


class TestBackwardRecursiveConfiguration:
    @pytest.fixture(scope="class")
    def testbed(self):
        return build_gns3("backward-recursive")

    def test_trace_to_ce2_tunnel_invisible(self, testbed):
        assert hops(testbed, "CE2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("PE2.left", 250, False),
            ("CE2.left", 250, False),
        ]

    def test_trace_to_pe2_reveals_p3(self, testbed):
        assert hops(testbed, "PE2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("P3.left", 251, False),
            ("PE2.left", 250, False),
        ]

    def test_trace_to_p3_reveals_p2(self, testbed):
        assert hops(testbed, "P3.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("P2.left", 252, False),
            ("P3.left", 251, False),
        ]

    def test_trace_to_p2_reveals_p1(self, testbed):
        assert hops(testbed, "P2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("P1.left", 253, False),
            ("P2.left", 252, False),
        ]

    def test_trace_to_p1_recursion_stops(self, testbed):
        assert hops(testbed, "P1.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("P1.left", 253, False),
        ]

    def test_no_labels_anywhere(self, testbed):
        for target in ("CE2.left", "PE2.left", "P3.left", "P2.left"):
            assert not testbed.traceroute(target).contains_labels()


# ---------------------------------------------------------------------------
# Fig. 4c — Explicit Route configuration (loopback-only LDP).


class TestExplicitRouteConfiguration:
    @pytest.fixture(scope="class")
    def testbed(self):
        return build_gns3("explicit-route")

    def test_trace_to_ce2_tunnel_invisible(self, testbed):
        assert hops(testbed, "CE2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("PE2.left", 250, False),
            ("CE2.left", 250, False),
        ]

    def test_trace_to_pe2_reveals_whole_path(self, testbed):
        assert hops(testbed, "PE2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("P1.left", 253, False),
            ("P2.left", 252, False),
            ("P3.left", 251, False),
            ("PE2.left", 250, False),
        ]


# ---------------------------------------------------------------------------
# Fig. 4d — Totally Invisible configuration (UHP + no-ttl-propagate).


class TestTotallyInvisibleConfiguration:
    @pytest.fixture(scope="class")
    def testbed(self):
        return build_gns3("totally-invisible")

    def test_trace_to_ce2_pe2_hidden(self, testbed):
        assert hops(testbed, "CE2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("CE2.left", 252, False),
        ]

    def test_trace_to_pe2_reveals_nothing(self, testbed):
        assert hops(testbed, "PE2.left") == [
            ("CE1.left", 255, False),
            ("PE1.left", 254, False),
            ("PE2.left", 253, False),
        ]


# ---------------------------------------------------------------------------
# Return-TTL side channel (Sec. 3.1): the shift FRPLA exploits.


class TestReturnTtlSideChannel:
    def test_return_path_length_includes_tunnel_hops(self):
        # In the invisible (PHP) case PE2 appears at forward hop 3 but
        # its time-exceeded comes back with TTL 250: a 5-hop return
        # path, which includes the 3 hidden LSRs + PE1 + CE1.
        testbed = build_gns3("backward-recursive")
        trace = testbed.traceroute("CE2.left")
        pe2 = trace.hop_of(testbed.address("PE2.left"))
        assert pe2.probe_ttl == 3
        assert 255 - pe2.reply_ttl == 5

    def test_uhp_return_tunnel_leaves_no_shift(self):
        # With UHP the min rule never runs, so the return path looks
        # only 3 hops long — no FRPLA signal (Table 2, right column).
        testbed = build_gns3("totally-invisible")
        trace = testbed.traceroute("PE2.left")
        pe2 = trace.hop_of(testbed.address("PE2.left"))
        assert 255 - pe2.reply_ttl == 2


class TestUhpGridExtension:
    """Beyond Table 2's PHP premise: the UHP column, emulated.

    With propagation, UHP tunnels stay explicit via LSE expiry; without
    it, neither FRPLA's shift nor RTLA's gap survives (Sec. 3.4).
    """

    def test_uhp_with_propagation_keeps_lsp_explicit(self):
        from repro.mpls.config import MplsConfig, PoppingMode
        from repro.net.vendors import CISCO

        config = MplsConfig.from_vendor(
            CISCO, ttl_propagate=True, popping=PoppingMode.UHP
        )
        testbed = build_gns3(config=config)
        trace = testbed.traceroute("CE2.left")
        names = [h.responder_router for h in trace.responsive_hops]
        assert names == ["CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"]
        assert trace.contains_labels()

    def test_uhp_without_propagation_no_shift_no_gap(self):
        from repro.core.frpla import rfa_of_hop
        from repro.core.rtla import RtlaAnalyzer
        from repro.mpls.config import MplsConfig, PoppingMode
        from repro.net.vendors import JUNIPER

        config = MplsConfig.from_vendor(
            JUNIPER, ttl_propagate=False, popping=PoppingMode.UHP
        )
        testbed = build_gns3(vendor=JUNIPER, config=config)
        trace = testbed.traceroute("CE2.left")
        # Even the Juniper signature cannot rescue RTLA under UHP.
        analyzer = RtlaAnalyzer()
        analyzer.add_trace(trace)
        analyzer.add_ping(
            testbed.prober.ping(
                testbed.vantage_point, testbed.address("PE2.left")
            )
        )
        estimate = analyzer.estimate(testbed.address("PE2.left"))
        assert estimate is None or estimate.tunnel_length <= 0
        shifts = [
            rfa_of_hop(h).rfa
            for h in trace.hops
            if rfa_of_hop(h) is not None
        ]
        assert all(shift <= 1 for shift in shifts)
