"""Checkpoint/resume must be bit-identical to an uninterrupted run.

The warehouse contract (``repro.store``) is that a campaign killed at
*any* point — a phase boundary, mid-revelation, even mid-record-write —
resumes to exactly the result an uninterrupted run produces, including
the measurement-plane counters.  These tests interrupt the seeded
campaign via probe budgets chosen to land in each phase, resume, and
compare field-by-field (the result holds analyzers without ``__eq__``,
so whole-object equality is meaningless — same idiom as
``test_parallel_campaign.py``).
"""

import json
import os

import pytest

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.obs import measurement_counters
from repro.store import (
    IDENTITY_EXCLUDED_FIELDS,
    RESUME_EXEMPT_COUNTERS,
    CampaignCheckpoint,
    Snapshot,
    StoreMismatch,
    campaign_key,
    config_fingerprint,
)
from repro.synth.internet import InternetConfig, build_internet

TOPOLOGY = {"kind": "synthetic-internet", "seed": 77}

# Budgets chosen against the seed-77 campaign (473 trace+ping probes,
# 265 revelation probes): one interruption per phase, plus late
# revelation.
BUDGETS = {
    "trace": 120,
    "ping": 400,
    "revelation_early": 500,
    "revelation_late": 700,
}


def _build(budget=None, workers=1):
    internet = build_internet(InternetConfig(seed=77))
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(
            suspicious_asns=tuple(internet.transit_asns),
            probe_budget=budget,
            workers=workers,
        ),
    )
    return internet, campaign


def _counters(campaign):
    counters = dict(
        measurement_counters(campaign.obs.metrics.counters_snapshot())
    )
    for name in RESUME_EXEMPT_COUNTERS:
        counters.pop(name, None)
    return counters


def _assert_results_equal(resumed, baseline):
    assert resumed.traces == baseline.traces
    assert resumed.pings == baseline.pings
    assert resumed.pairs == baseline.pairs
    assert resumed.revelations == baseline.revelations
    assert resumed.probes_sent == baseline.probes_sent
    assert resumed.revelation_probes == baseline.revelation_probes
    assert resumed.inventory._te == baseline.inventory._te
    assert resumed.inventory._er == baseline.inventory._er
    assert resumed.rtla._te_ttl == baseline.rtla._te_ttl
    assert resumed.rtla._er_ttl == baseline.rtla._er_ttl
    assert not resumed.partial
    assert resumed.stop_reason is None


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted seed-77 run plus its measurement counters."""
    _, campaign = _build()
    internet, campaign = _build()
    result = campaign.run(internet.campaign_targets())
    return result, _counters(campaign)


def _interrupt_and_resume(tmp_path, budget, resume_workers=1):
    """Budget-kill a checkpointed run, then resume it to completion."""
    internet, campaign = _build(budget=budget)
    partial = campaign.run(
        internet.campaign_targets(),
        checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
    )
    assert partial.partial
    internet, campaign = _build(workers=resume_workers)
    resumed = campaign.run(
        internet.campaign_targets(),
        checkpoint=CampaignCheckpoint(
            str(tmp_path), TOPOLOGY, resume=True
        ),
    )
    return partial, resumed, campaign


class TestResumeBitIdentical:
    @pytest.mark.parametrize("phase", sorted(BUDGETS))
    def test_interrupt_each_phase(self, tmp_path, baseline, phase):
        expected, expected_counters = baseline
        _, resumed, campaign = _interrupt_and_resume(
            tmp_path, BUDGETS[phase]
        )
        _assert_results_equal(resumed, expected)
        assert _counters(campaign) == expected_counters

    def test_resume_with_workers(self, tmp_path, baseline):
        expected, expected_counters = baseline
        _, resumed, campaign = _interrupt_and_resume(
            tmp_path, BUDGETS["ping"], resume_workers=2
        )
        _assert_results_equal(resumed, expected)
        assert _counters(campaign) == expected_counters

    def test_double_interruption(self, tmp_path, baseline):
        expected, expected_counters = baseline
        internet, campaign = _build(budget=300)
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        internet, campaign = _build(budget=650)
        second = campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(
                str(tmp_path), TOPOLOGY, resume=True
            ),
        )
        assert second.partial
        internet, campaign = _build()
        resumed = campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(
                str(tmp_path), TOPOLOGY, resume=True
            ),
        )
        _assert_results_equal(resumed, expected)
        assert _counters(campaign) == expected_counters

    def test_complete_snapshot_resumes_without_probing(
        self, tmp_path, baseline
    ):
        expected, _ = baseline
        internet, campaign = _build()
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        internet, campaign = _build()
        resumed = campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(
                str(tmp_path), TOPOLOGY, resume=True
            ),
        )
        _assert_results_equal(resumed, expected)
        # Everything was replayed from the warehouse: the simulator
        # never forwarded a packet in the resumed leg.
        assert resumed.perf.packets_simulated == 0

    def test_run_status_reflects_interrupt_then_completion(
        self, tmp_path
    ):
        partial, resumed, _ = _interrupt_and_resume(
            tmp_path, BUDGETS["revelation_early"]
        )
        snapshot = Snapshot(
            os.path.join(str(tmp_path), os.listdir(str(tmp_path))[0])
        )
        status = snapshot.run_status()
        assert status["partial"] is False
        assert status["stop_reason"] is None
        assert status["probes_sent"] == resumed.probes_sent
        assert status["revelation_probes"] == resumed.revelation_probes
        assert partial.checkpoint_dir == str(snapshot.path)
        assert resumed.checkpoint_dir == str(snapshot.path)


class TestCrashSafety:
    def test_damaged_tail_is_dropped_on_resume(
        self, tmp_path, baseline
    ):
        """A torn write (half a JSON line) must not poison the store."""
        expected, _ = baseline
        internet, campaign = _build(budget=BUDGETS["ping"])
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        snapshot_dir = os.path.join(
            str(tmp_path), os.listdir(str(tmp_path))[0]
        )
        ping_path = os.path.join(snapshot_dir, "phases", "ping.jsonl")
        with open(ping_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 999, "index": 7,')  # torn mid-write
        internet, campaign = _build()
        resumed = campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(
                str(tmp_path), TOPOLOGY, resume=True
            ),
        )
        _assert_results_equal(resumed, expected)

    def test_truncated_earlier_phase_discards_later_records(
        self, tmp_path, baseline
    ):
        """Losing trace-tail records invalidates dependent pings.

        The global ``seq`` chain exists for exactly this: if the trace
        file loses records but ping survived intact, the surviving
        ping records were measured against state we no longer have,
        so resume must drop them and re-measure.
        """
        expected, _ = baseline
        internet, campaign = _build(budget=BUDGETS["ping"])
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        snapshot_dir = os.path.join(
            str(tmp_path), os.listdir(str(tmp_path))[0]
        )
        trace_path = os.path.join(
            snapshot_dir, "phases", "trace.jsonl"
        )
        lines = open(trace_path, encoding="utf-8").read().splitlines()
        with open(trace_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-5]) + "\n")
        internet, campaign = _build()
        resumed = campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(
                str(tmp_path), TOPOLOGY, resume=True
            ),
        )
        _assert_results_equal(resumed, expected)

    def test_resume_missing_snapshot_raises(self, tmp_path):
        internet, campaign = _build()
        with pytest.raises(StoreMismatch):
            campaign.run(
                internet.campaign_targets(),
                checkpoint=CampaignCheckpoint(
                    str(tmp_path), TOPOLOGY, resume=True
                ),
            )

    def test_resume_topology_mismatch_raises(self, tmp_path):
        internet, campaign = _build(budget=BUDGETS["trace"])
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        internet, campaign = _build()
        with pytest.raises(StoreMismatch):
            campaign.run(
                internet.campaign_targets(),
                checkpoint=CampaignCheckpoint(
                    str(tmp_path),
                    {"kind": "synthetic-internet", "seed": 78},
                    resume=True,
                ),
            )

    def test_fresh_checkpoint_refuses_populated_snapshot(
        self, tmp_path
    ):
        """``--checkpoint`` never silently clobbers existing records."""
        internet, campaign = _build(budget=BUDGETS["trace"])
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        internet, campaign = _build()
        with pytest.raises(StoreMismatch):
            campaign.run(
                internet.campaign_targets(),
                checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
            )


class TestIdentityKey:
    def test_execution_knobs_do_not_change_the_key(self):
        base = CampaignConfig(suspicious_asns=(64500,))
        tuned = CampaignConfig(
            suspicious_asns=(64500,),
            workers=8,
            probe_budget=100,
            retry_backoff_ms=50.0,
        )
        targets = [1, 2, 3]
        assert campaign_key(TOPOLOGY, base, targets) == campaign_key(
            TOPOLOGY, tuned, targets
        )
        fingerprint = config_fingerprint(tuned)
        for field in IDENTITY_EXCLUDED_FIELDS:
            assert field not in fingerprint

    def test_measurement_identity_changes_the_key(self):
        base = CampaignConfig(suspicious_asns=(64500,))
        other_asns = CampaignConfig(suspicious_asns=(64501,))
        targets = [1, 2, 3]
        key = campaign_key(TOPOLOGY, base, targets)
        assert key != campaign_key(TOPOLOGY, other_asns, targets)
        assert key != campaign_key(
            {"kind": "synthetic-internet", "seed": 78}, base, targets
        )
        assert key != campaign_key(TOPOLOGY, base, [1, 2, 4])


class TestStopSummary:
    def test_checkpointed_partial_names_snapshot_and_resume(
        self, tmp_path
    ):
        internet, campaign = _build(budget=BUDGETS["ping"])
        result = campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        summary = result.stop_summary()
        assert result.checkpoint_dir in summary
        assert f"--resume {tmp_path}" in summary

    def test_uncheckpointed_partial_suggests_checkpoint(self):
        internet, campaign = _build(budget=BUDGETS["ping"])
        result = campaign.run(internet.campaign_targets())
        summary = result.stop_summary()
        assert "--checkpoint" in summary
        assert result.stop_reason in summary

    def test_complete_run_has_no_summary(self, baseline):
        expected, _ = baseline
        assert expected.stop_summary() is None

    def test_duration_estimate_matches_paper_rates(self, baseline):
        expected, _ = baseline
        total = expected.probes_sent + expected.revelation_probes
        assert expected.duration_estimate_seconds() == pytest.approx(
            total / (25.0 * 5)
        )
        assert expected.duration_estimate_seconds(
            rate_pps=50.0, teams=1
        ) == pytest.approx(total / 50.0)
        with pytest.raises(ValueError):
            expected.duration_estimate_seconds(rate_pps=0)
        with pytest.raises(ValueError):
            expected.duration_estimate_seconds(teams=0)


class TestStoreInspect:
    """The operator tool must digest real and damaged snapshots."""

    def test_inspect_renders_snapshot(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "store_inspect",
            os.path.join(
                os.path.dirname(os.path.dirname(__file__)),
                "tools",
                "store_inspect.py",
            ),
        )
        inspect = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(inspect)

        internet, campaign = _build(budget=BUDGETS["revelation_early"])
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        snapshots = inspect.find_snapshots(str(tmp_path))
        assert len(snapshots) == 1
        summary = inspect.summarize_snapshot(snapshots[0])
        counts = {
            phase: stats["records"]
            for phase, stats in summary["phases"].items()
        }
        assert counts["trace"] > 0
        assert counts["pairs"] > 0
        assert summary["chain_length"] == sum(counts.values())
        assert not any(
            stats["damaged"] for stats in summary["phases"].values()
        )
        text = inspect.render(summary)
        assert "Phase records" in text
        assert "Checkpointed progression" in text
        # Damage the revelation tail: the tool flags it, no crash.
        with open(
            os.path.join(snapshots[0], "phases", "revelation.jsonl"),
            "a",
            encoding="utf-8",
        ) as handle:
            handle.write("not json\n")
        damaged = inspect.summarize_snapshot(snapshots[0])
        assert damaged["phases"]["revelation"]["damaged"]
        assert "damaged tail" in inspect.render(damaged)

    def test_inspect_exit_codes(self, tmp_path, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "store_inspect_cli",
            os.path.join(
                os.path.dirname(os.path.dirname(__file__)),
                "tools",
                "store_inspect.py",
            ),
        )
        inspect = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(inspect)
        assert inspect.main(["store_inspect.py"]) == 2
        assert inspect.main(
            ["store_inspect.py", str(tmp_path / "nowhere")]
        ) == 1
        capsys.readouterr()


class TestStateBlocks:
    def test_records_carry_replayable_state(self, tmp_path):
        """Every record's STATE block is self-consistent JSON."""
        internet, campaign = _build(budget=BUDGETS["revelation_late"])
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(str(tmp_path), TOPOLOGY),
        )
        snapshot_dir = os.path.join(
            str(tmp_path), os.listdir(str(tmp_path))[0]
        )
        seq = 0
        last_probes = -1
        for phase in ("trace", "ping", "pairs", "revelation"):
            path = os.path.join(
                snapshot_dir, "phases", f"{phase}.jsonl"
            )
            for index, line in enumerate(
                open(path, encoding="utf-8")
            ):
                record = json.loads(line)
                assert record["index"] == index
                assert record["seq"] == seq
                seq += 1
                state = record["state"]
                probes = state["result"]["probes_sent"] + state[
                    "result"
                ]["revelation_probes"]
                assert probes >= last_probes
                last_probes = probes
                assert "probes_sent" in state["service"]
                for name in RESUME_EXEMPT_COUNTERS:
                    assert name not in state["counters"]
