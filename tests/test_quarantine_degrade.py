"""Graceful-degradation tests: sanitizer, circuit breaker, budgets.

The degradation contract (DESIGN §11): anomalous replies are
quarantined before any analyzer sees them, repeatedly dead ping
targets are parked instead of burning retries, retry backoff charges
the active trace deadline, and exhausted retries are accounted — all
without crashing or corrupting the campaign result.
"""

import pytest

from repro.campaign.degrade import CircuitBreaker
from repro.measure import MAX_MPLS_LABEL, inspect_reply
from repro.measure.backend import (
    ECHO_REPLY,
    TIME_EXCEEDED,
    ProbeBackend,
    ProbeReply,
    ProbeRequest,
)
from repro.measure.service import (
    MeasurementPolicy,
    ProbeService,
    TraceBudget,
)

REQUEST = ProbeRequest("VP", 123, 4, 7)


def _reply(**overrides):
    fields = dict(
        probe_ttl=4,
        reply_kind=TIME_EXCEEDED,
        responder=456,
        reply_ttl=250,
        rtt_ms=3.5,
    )
    fields.update(overrides)
    return ProbeReply(**fields)


class TestInspectReply:
    def test_clean_reply_passes(self):
        assert inspect_reply(REQUEST, _reply()) is None
        assert (
            inspect_reply(REQUEST, _reply(reply_kind=ECHO_REPLY))
            is None
        )

    def test_unknown_kind(self):
        reply = _reply(reply_kind="redirect")
        assert inspect_reply(REQUEST, reply) == "unknown-kind"

    def test_missing_responder(self):
        reply = _reply(responder=None)
        assert inspect_reply(REQUEST, reply) == "missing-responder"

    @pytest.mark.parametrize("ttl", [0, 256, -3])
    def test_bogus_reply_ttl(self, ttl):
        reply = _reply(reply_ttl=ttl)
        assert inspect_reply(REQUEST, reply) == "bogus-reply-ttl"

    def test_negative_rtt(self):
        reply = _reply(rtt_ms=-0.1)
        assert inspect_reply(REQUEST, reply) == "negative-rtt"

    def test_malformed_label_entry(self):
        reply = _reply(quoted_labels=[(17,)])
        assert (
            inspect_reply(REQUEST, reply) == "malformed-label-entry"
        )

    def test_bogus_label_value(self):
        reply = _reply(quoted_labels=[(MAX_MPLS_LABEL + 1, 4)])
        assert inspect_reply(REQUEST, reply) == "bogus-label"

    def test_bogus_quoted_ttl(self):
        reply = _reply(quoted_labels=[(17, 0)])
        assert inspect_reply(REQUEST, reply) == "bogus-quoted-ttl"

    def test_spoofed_source_needs_validator(self):
        reply = _reply()
        assert inspect_reply(REQUEST, reply) is None
        assert (
            inspect_reply(REQUEST, reply, lambda address: False)
            == "spoofed-source"
        )
        assert (
            inspect_reply(REQUEST, reply, lambda address: True)
            is None
        )


class TestCircuitBreaker:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)

    def test_disabled_breaker_never_trips(self):
        breaker = CircuitBreaker(None)
        for _ in range(100):
            breaker.record("t", ok=False)
        assert not breaker.tripped("t")
        assert breaker.tripped_keys == []

    def test_trips_after_consecutive_misses(self):
        breaker = CircuitBreaker(3)
        breaker.record("t", ok=False)
        breaker.record("t", ok=False)
        assert not breaker.tripped("t")
        breaker.record("t", ok=False)
        assert breaker.tripped("t")

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(2)
        breaker.record("t", ok=False)
        breaker.record("t", ok=True)
        breaker.record("t", ok=False)
        assert not breaker.tripped("t")

    def test_tripped_keys_in_trip_order(self):
        breaker = CircuitBreaker(1)
        breaker.record("b", ok=False)
        breaker.record("a", ok=False)
        breaker.record("b", ok=False)  # already tripped: no re-entry
        assert breaker.tripped_keys == ["b", "a"]


class SilentBackend(ProbeBackend):
    """Never answers: every probe is a timeout."""

    name = "silent"

    def __init__(self):
        self.submitted = 0

    def submit(self, request):
        """Count the attempt and time out."""
        self.submitted += 1
        return ProbeReply(probe_ttl=request.ttl)


class SpoofBackend(ProbeBackend):
    """Every reply claims to come from unallocated space."""

    name = "spoof"

    def submit(self, request):
        """Answer with a structurally valid but spoofed reply."""
        return ProbeReply(
            probe_ttl=request.ttl,
            reply_kind=TIME_EXCEEDED,
            responder=0xE0000001,
            reply_ttl=250,
        )


class TestRetryAccounting:
    def test_retries_exhausted_counter(self):
        backend = SilentBackend()
        service = ProbeService(
            backend, MeasurementPolicy(max_retries=2)
        )
        reply = service.traceroute_probe("VP", 99, 3, 1)
        assert reply.reply_kind is None
        assert backend.submitted == 3  # first attempt + 2 retries
        assert service.obs.metrics.get("measure.retries") == 2
        assert (
            service.obs.metrics.get("measure.retries_exhausted") == 1
        )

    def test_backoff_charges_the_trace_deadline(self):
        backend = SilentBackend()
        service = ProbeService(
            backend,
            MeasurementPolicy(
                max_retries=10, retry_backoff_ms=8.0
            ),
        )
        budget = TraceBudget(20.0)
        service.traceroute_probe("VP", 99, 3, 1, trace_budget=budget)
        # Backoff doubles: 8 + 16 = 24 ms charged -> expired after
        # two retries, well before the 10-retry cap.
        assert budget.expired
        assert service.obs.metrics.get("measure.retries") == 2
        assert backend.submitted == 3
        assert (
            service.obs.metrics.get("measure.deadline.trace") == 1
        )

    def test_expired_budget_skips_the_retry_tail(self):
        backend = SilentBackend()
        service = ProbeService(
            backend, MeasurementPolicy(max_retries=5)
        )
        budget = TraceBudget(1.0)
        budget.charge(5.0)  # already expired
        service.traceroute_probe("VP", 99, 3, 1, trace_budget=budget)
        assert backend.submitted == 1  # no retries at all
        assert service.obs.metrics.get("measure.retries") == 0


class TestServiceQuarantine:
    def _sanitizing_service(self):
        return ProbeService(
            SpoofBackend(),
            MeasurementPolicy(
                sanitize=True,
                address_validator=lambda address: False,
            ),
        )

    def test_quarantined_reply_becomes_timeout(self):
        service = self._sanitizing_service()
        reply = service.traceroute_probe("VP", 99, 3, 1)
        assert reply.reply_kind is None
        records = service.quarantine_records
        assert len(records) == 1
        record = records[0]
        assert record["reason"] == "spoofed-source"
        assert record["vp"] == "VP"
        assert record["dst"] == 99
        assert record["ttl"] == 3
        metrics = service.obs.metrics
        assert metrics.get("measure.quarantined") == 1
        assert (
            metrics.get("measure.quarantined.spoofed-source") == 1
        )

    def test_sanitize_off_lets_the_reply_through(self):
        service = ProbeService(SpoofBackend(), MeasurementPolicy())
        reply = service.traceroute_probe("VP", 99, 3, 1)
        assert reply.responder == 0xE0000001
        assert service.quarantine_records == []

    def test_quarantine_export_import_round_trip(self):
        service = self._sanitizing_service()
        for dst in (99, 100, 101):
            service.traceroute_probe("VP", dst, 3, 1)
        exported = service.export_quarantine(0)
        assert len(exported) == 3
        # Delta export: nothing new after the known watermark.
        assert service.export_quarantine(3) == []

        other = ProbeService(SpoofBackend(), MeasurementPolicy())
        other.import_quarantine(exported)
        assert other.quarantine_records == service.quarantine_records

        service.clear_quarantine()
        assert service.quarantine_records == []
