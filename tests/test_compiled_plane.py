"""Compiled batch data plane: bit-identity and invalidation tests.

The contract under test (ISSUE: compiled batch data plane): batch
evaluation through per-flow compiled programs is *bit-identical* to
the scalar walk — on recorded probe logs, under zero-fault and
hostile fault profiles, across mid-campaign flaps, and across
checkpoint→resume — while the ``dataplane.compiled.*`` counters
account builds, batches and invalidations.  The numpy and
pure-python locate kernels must agree exactly, and liveness (ICMP
flags flipped without any invalidation firing) must bypass every
reply memo.
"""

import pytest

from repro.dataplane.compiled import (
    NUMPY_BATCH_CUTOFF,
    CompiledPlane,
)
from repro.dataplane import compiled as compiled_module
from repro.experiments.common import CampaignContext, ContextConfig
from repro.faults import FaultyBackend, fault_profile
from repro.measure import RecordingBackend, SimBackend
from repro.measure.backend import ProbeRequest
from repro.obs import measurement_counters
from repro.probing.prober import Prober
from repro.store import RESUME_EXEMPT_COUNTERS
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


def small_internet(seed=11, compiled=False, window=1):
    return build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.4)),
            vantage_points=3,
            stubs_per_transit=2,
            seed=seed,
            compiled_plane=compiled,
            probe_batch_window=window,
        )
    )


def trace_signature(trace):
    """Everything a trace observes, as one comparable tuple."""
    return (
        trace.destination_reached,
        tuple(
            (
                hop.probe_ttl, hop.reply_kind, hop.address,
                hop.reply_ttl, tuple(hop.quoted_labels), hop.rtt_ms,
            )
            for hop in trace.hops
        ),
    )


def all_traces(internet, count=10, rounds=2):
    """Traces from every VP, re-traced so memo hits are exercised."""
    signatures = []
    targets = internet.campaign_targets()[:count]
    for _ in range(rounds):
        for vp in internet.vps:
            for dst in targets:
                signatures.append(
                    trace_signature(internet.prober.traceroute(vp, dst))
                )
    return signatures


class TestTraceIdentity:
    def test_scalar_vs_compiled_vs_windowed(self):
        scalar = all_traces(small_internet())
        compiled = all_traces(small_internet(compiled=True))
        windowed = all_traces(small_internet(compiled=True, window=8))
        assert scalar == compiled == windowed

    def test_uncached_engine_matches_compiled(self):
        walked = build_internet(
            InternetConfig(
                profiles=tuple(paper_profiles(0.4)),
                vantage_points=3,
                stubs_per_transit=2,
                seed=11,
                trajectory_cache=False,
            )
        )
        assert all_traces(walked) == all_traces(
            small_internet(compiled=True, window=8)
        )


def _record_log(tmp_path, name, compiled, window, profile=None):
    """Record probing to a JSONL log; returns its bytes."""
    internet = small_internet(compiled=compiled, window=window)
    backend = SimBackend(internet.engine)
    if profile is not None:
        backend = FaultyBackend(backend, fault_profile(profile))
    path = str(tmp_path / name)
    recording = RecordingBackend(backend, path)
    prober = Prober(
        recording, obs=internet.engine.obs, batch_window=window
    )
    vp = internet.vps[0]
    for dst in internet.campaign_targets()[:6]:
        prober.traceroute(vp, dst)
        prober.ping(vp, dst)
    recording.close()
    with open(path, "rb") as handle:
        return handle.read()


class TestRecordedLogIdentity:
    @pytest.mark.parametrize("window", [1, 8])
    def test_zero_fault_logs_byte_identical(self, tmp_path, window):
        scalar = _record_log(
            tmp_path, "scalar.jsonl", compiled=False, window=window
        )
        compiled = _record_log(
            tmp_path, "compiled.jsonl", compiled=True, window=window
        )
        assert scalar == compiled

    @pytest.mark.parametrize("profile", ["hostile", "flap"])
    def test_faulty_logs_byte_identical(self, tmp_path, profile):
        # Same batch window on both sides: the probe stream drives the
        # fault clock, so only the compiled plane may differ.
        scalar = _record_log(
            tmp_path, "scalar.jsonl", compiled=False, window=8,
            profile=profile,
        )
        compiled = _record_log(
            tmp_path, "compiled.jsonl", compiled=True, window=8,
            profile=profile,
        )
        assert scalar == compiled


class TestFlapsAndLiveness:
    def test_flap_invalidates_compiled_plane(self):
        internet = small_internet(compiled=True, window=8)
        backend = FaultyBackend(
            SimBackend(internet.engine), fault_profile("flap")
        )
        prober = Prober(
            backend, obs=internet.engine.obs, batch_window=8
        )
        # Enough probes to walk past the profile's flap positions.
        for vp in internet.vps:
            for dst in internet.campaign_targets()[:10]:
                prober.traceroute(vp, dst)
        metrics = internet.engine.obs.metrics
        assert metrics.get("faults.flaps.route-change") >= 1
        assert metrics.get("dataplane.compiled.invalidations") >= 1
        # Rebuilt after the flush: programs exist again post-flap.
        assert internet.engine.compiled_plane.stats()["programs"] > 0

    def test_router_down_bypasses_window_memo(self):
        """ICMP flags flip WITHOUT invalidation; memos must not serve
        stale replies."""
        internet = small_internet(compiled=True, window=8)
        engine = internet.engine
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        requests = [
            ProbeRequest(vp.name, dst, ttl, 7) for ttl in range(2, 10)
        ]
        before = engine.send_probe_batch(requests)
        responders = [
            reply.responder_router
            for reply in before
            if reply.responder_router is not None
        ]
        assert responders
        victim = internet.network.router(responders[0])
        victim.icmp_enabled = False
        try:
            during = engine.send_probe_batch(requests)
        finally:
            victim.icmp_enabled = True
        after = engine.send_probe_batch(requests)
        assert any(
            d.responded != b.responded
            for b, d in zip(before, during)
        )
        assert [r.responder_router for r in during] != responders
        assert [
            (r.probe_ttl, r.reply_kind, r.responder, r.rtt_ms)
            for r in after
        ] == [
            (r.probe_ttl, r.reply_kind, r.responder, r.rtt_ms)
            for r in before
        ]

    def test_response_rate_change_bypasses_reply_memo(self):
        internet = small_internet(compiled=True, window=8)
        engine = internet.engine
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        requests = [
            ProbeRequest(vp.name, dst, ttl, 7) for ttl in range(2, 10)
        ]
        before = engine.send_probe_batch(requests)
        responders = {
            reply.responder_router
            for reply in before
            if reply.responder_router is not None
        }
        for name in responders:
            internet.network.router(name).icmp_response_rate = 0.0
        try:
            during = engine.send_probe_batch(requests)
        finally:
            for name in responders:
                internet.network.router(name).icmp_response_rate = 1.0
        assert not any(
            reply.responder_router in responders for reply in during
        )


class TestKernelEquivalence:
    def test_pure_python_matches_numpy(self, monkeypatch):
        internet = small_internet(compiled=True)
        engine = internet.engine
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        size = NUMPY_BATCH_CUTOFF + 8  # forces the vector kernel
        requests = [
            ProbeRequest(vp.name, dst, 1 + (i % 40), 7)
            for i in range(size)
        ]
        with_numpy = engine.send_probe_batch(requests)
        pytest.importorskip("numpy")  # the run above used it
        engine.compiled_plane.flush()
        monkeypatch.setattr(compiled_module, "_np", None)
        pure = engine.send_probe_batch(requests)
        assert [
            (r.probe_ttl, r.reply_kind, r.responder, r.reply_ttl,
             tuple(r.quoted_labels), r.rtt_ms)
            for r in with_numpy
        ] == [
            (r.probe_ttl, r.reply_kind, r.responder, r.reply_ttl,
             tuple(r.quoted_labels), r.rtt_ms)
            for r in pure
        ]


class TestMetrics:
    def test_compiled_counters_populated(self):
        internet = small_internet(compiled=True, window=8)
        vp = internet.vps[0]
        for dst in internet.campaign_targets()[:6]:
            internet.prober.traceroute(vp, dst)
        metrics = internet.engine.obs.metrics
        assert metrics.get("dataplane.compiled.builds") > 0
        assert metrics.get("dataplane.compiled.batches") > 0
        assert metrics.get("dataplane.compiled.fallback_to_scalar") == 0
        sizes = metrics.histograms.get("dataplane.compiled.batch_size")
        assert sizes is not None and sizes.count > 0

    def test_fallback_counter_without_plane(self):
        internet = small_internet(compiled=False, window=8)
        vp = internet.vps[0]
        internet.prober.traceroute(vp, internet.campaign_targets()[0])
        metrics = internet.engine.obs.metrics
        assert metrics.get("dataplane.compiled.fallback_to_scalar") > 0
        assert metrics.get("dataplane.compiled.batches") == 0

    def test_plane_stats_shape(self):
        plane = CompiledPlane()
        assert plane.stats() == {"programs": 0, "events": 0}


BASE = dict(
    scale=0.4,
    seed=11,
    vantage_points=3,
    stubs_per_transit=2,
)

RESULT_FIELDS = (
    "traces", "pings", "pairs", "revelations",
    "probes_sent", "revelation_probes",
)


def _assert_results_equal(left, right):
    for name in RESULT_FIELDS:
        assert getattr(left, name) == getattr(right, name), name


def _counters(context):
    counters = dict(
        measurement_counters(
            context.campaign.obs.metrics.counters_snapshot()
        )
    )
    for name in RESUME_EXEMPT_COUNTERS:
        counters.pop(name, None)
    return counters


class TestCampaignIdentity:
    def test_campaign_equal_with_and_without_compiled(self):
        # Same batch window on both sides: windowed probing keeps
        # extra probes in flight behind a stop (they spend budget), so
        # only the compiled plane may differ between the two runs.
        scalar = CampaignContext(
            ContextConfig(batch_window=8, **BASE)
        )
        compiled = CampaignContext(
            ContextConfig(compiled_plane=True, batch_window=8, **BASE)
        )
        _assert_results_equal(compiled.result, scalar.result)
        assert _counters(compiled) == _counters(scalar)

    def test_hostile_resume_bit_identical(self, tmp_path):
        baseline = CampaignContext(
            ContextConfig(
                fault_profile="hostile", compiled_plane=True,
                batch_window=8, **BASE,
            )
        )
        warehouse = str(tmp_path / "warehouse")
        CampaignContext(
            ContextConfig(
                fault_profile="hostile", compiled_plane=True,
                batch_window=8, probe_budget=400,
                checkpoint_dir=warehouse, **BASE,
            )
        )
        resumed = CampaignContext(
            ContextConfig(
                fault_profile="hostile", compiled_plane=True,
                batch_window=8, checkpoint_dir=warehouse,
                resume=True, **BASE,
            )
        )
        assert not resumed.result.partial
        _assert_results_equal(resumed.result, baseline.result)
