"""Unit tests for the scamper-like prober (traceroute/ping)."""


from repro.dataplane.engine import ForwardingEngine
from repro.net.topology import Network
from repro.net.vendors import CISCO
from repro.probing.prober import Prober
from repro.synth.gns3 import build_gns3


def build_chain(length=6):
    network = Network()
    routers = [
        network.add_router(f"R{i}", asn=1, vendor=CISCO)
        for i in range(length)
    ]
    for a, b in zip(routers, routers[1:]):
        network.add_link(a, b)
    return network, routers


class TestTraceroute:
    def test_full_trace(self):
        network, routers = build_chain(5)
        prober = Prober(ForwardingEngine(network))
        trace = prober.traceroute(routers[0], routers[4].loopback)
        assert trace.destination_reached
        assert trace.forward_length == 4
        assert [h.probe_ttl for h in trace.hops] == [1, 2, 3, 4]

    def test_start_ttl_skips_first_hops(self):
        network, routers = build_chain(5)
        prober = Prober(ForwardingEngine(network))
        trace = prober.traceroute(
            routers[0], routers[4].loopback, start_ttl=3
        )
        assert trace.hops[0].probe_ttl == 3
        assert trace.destination_reached

    def test_gap_limit_stops_probing(self):
        network, routers = build_chain(8)
        for router in routers[2:6]:
            router.icmp_enabled = False
        prober = Prober(ForwardingEngine(network), gap_limit=3)
        trace = prober.traceroute(routers[0], routers[7].loopback)
        assert not trace.destination_reached
        # Stops after 3 consecutive stars: hop 1 answers, then R2–R4
        # are silent and the gap limit trips.
        assert len(trace.hops) == 4
        assert trace.hops[-1].address is None

    def test_gap_resets_on_response(self):
        network, routers = build_chain(8)
        routers[2].icmp_enabled = False
        routers[4].icmp_enabled = False
        prober = Prober(ForwardingEngine(network), gap_limit=3)
        trace = prober.traceroute(routers[0], routers[7].loopback)
        assert trace.destination_reached
        stars = [h for h in trace.hops if not h.responded]
        assert len(stars) == 2

    def test_max_ttl_bound(self):
        network, routers = build_chain(8)
        prober = Prober(ForwardingEngine(network))
        trace = prober.traceroute(
            routers[0], routers[7].loopback, max_ttl=3
        )
        assert not trace.destination_reached
        assert len(trace.hops) == 3

    def test_flow_id_deterministic_per_pair(self):
        # Flow ids are a pure function of (source, dst): repeating a
        # measurement reuses the same flow (same ECMP path), while a
        # different destination hashes to a different flow.
        network, routers = build_chain(3)
        prober = Prober(ForwardingEngine(network))
        t1 = prober.traceroute(routers[0], routers[2].loopback)
        t2 = prober.traceroute(routers[0], routers[2].loopback)
        assert t1.flow_id == t2.flow_id
        t3 = prober.traceroute(routers[0], routers[1].loopback)
        assert t3.flow_id != t1.flow_id
        pinned = prober.traceroute(
            routers[0], routers[2].loopback, flow_id=7
        )
        assert pinned.flow_id == 7

    def test_paris_same_flow_same_path(self):
        # ECMP square: R0 -> {A, B} -> R3; one trace takes one branch.
        network = Network()
        r0 = network.add_router("R0", asn=1)
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        r3 = network.add_router("R3", asn=1)
        tail = network.add_router("T", asn=1)
        network.add_link(r0, a)
        network.add_link(r0, b)
        network.add_link(a, r3)
        network.add_link(b, r3)
        network.add_link(r3, tail)
        prober = Prober(ForwardingEngine(network))
        for flow in range(1, 6):
            trace = prober.traceroute(
                r0, tail.loopback, flow_id=flow
            )
            middles = {
                h.responder_router for h in trace.hops[:1]
            }
            # Exactly one branch per trace, never both.
            assert len(middles) == 1

    def test_ecmp_branches_vary_across_flows(self):
        network = Network()
        r0 = network.add_router("R0", asn=1)
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        r3 = network.add_router("R3", asn=1)
        network.add_link(r0, a)
        network.add_link(r0, b)
        network.add_link(a, r3)
        network.add_link(b, r3)
        prober = Prober(ForwardingEngine(network))
        first_hops = set()
        for flow in range(1, 30):
            trace = prober.traceroute(r0, r3.loopback, flow_id=flow)
            first_hops.add(trace.hops[0].responder_router)
        assert first_hops == {"A", "B"}

    def test_probe_accounting(self):
        network, routers = build_chain(4)
        prober = Prober(ForwardingEngine(network))
        prober.traceroute(routers[0], routers[3].loopback)
        assert prober.probes_sent == 3
        prober.ping(routers[0], routers[3].loopback)
        assert prober.probes_sent == 4


class TestPing:
    def test_ping_success(self):
        network, routers = build_chain(4)
        prober = Prober(ForwardingEngine(network))
        result = prober.ping(routers[0], routers[3].loopback)
        assert result.responded
        assert result.reply_kind == "echo-reply"
        assert result.source == "R0"
        assert result.reply_ttl == 253  # Cisco 255 minus two transit hops

    def test_ping_silent_target(self):
        network, routers = build_chain(3)
        routers[2].icmp_enabled = False
        prober = Prober(ForwardingEngine(network))
        result = prober.ping(routers[0], routers[2].loopback)
        assert not result.responded
        assert result.reply_ttl is None


class TestTraceAccessors:
    def test_hop_of_and_last_responsive(self):
        testbed = build_gns3("backward-recursive")
        trace = testbed.traceroute("CE2.left")
        assert trace.hop_of(testbed.address("PE1.left")).probe_ttl == 2
        assert trace.hop_of(0xDEADBEEF) is None
        tail = trace.last_responsive(2)
        assert [testbed.name_of(h.address) for h in tail] == [
            "PE2.left", "CE2.left",
        ]

    def test_render_contains_return_ttls(self):
        testbed = build_gns3("default")
        trace = testbed.traceroute("CE2.left")
        text = testbed.render(trace)
        assert "[247]" in text
        assert "MPLS Label" in text

    def test_render_star_for_silent_hop(self):
        network, routers = build_chain(4)
        routers[1].icmp_enabled = False
        prober = Prober(ForwardingEngine(network))
        trace = prober.traceroute(routers[0], routers[3].loopback)
        assert "*" in trace.render()
