"""Unit tests for the combined revelation pipeline and its helpers."""


from repro.core.revelation import (
    Revelation,
    RevelationMethod,
    TunnelAwareTraceroute,
    _classify,
    candidate_endpoints,
    reveal_tunnel,
)
from repro.probing.prober import Trace, TraceHop
from repro.synth.gns3 import build_gns3


def hop(ttl, address, kind="time-exceeded", reply_ttl=250):
    return TraceHop(
        probe_ttl=ttl, address=address, reply_kind=kind, reply_ttl=reply_ttl
    )


def make_trace(addresses, dst=None, reached=True, start_ttl=1):
    dst = dst if dst is not None else addresses[-1]
    trace = Trace(source="vp", source_address=0, dst=dst, flow_id=1)
    for offset, address in enumerate(addresses):
        kind = (
            "echo-reply"
            if reached and offset == len(addresses) - 1
            else "time-exceeded"
        )
        trace.hops.append(hop(start_ttl + offset, address, kind=kind))
    trace.destination_reached = reached
    return trace


class TestCandidateEndpoints:
    def test_classic_tail(self):
        trace = make_trace([10, 20, 30, 40])
        assert candidate_endpoints(trace) == (20, 30)

    def test_requires_destination(self):
        trace = make_trace([10, 20, 30, 40], reached=False)
        assert candidate_endpoints(trace) is None

    def test_requires_three_hops(self):
        trace = make_trace([10, 20])
        assert candidate_endpoints(trace) is None

    def test_requires_consecutive_ttls(self):
        trace = make_trace([10, 20, 30, 40])
        trace.hops[2].probe_ttl += 1  # a star between Y and D
        trace.hops[3].probe_ttl += 1
        assert candidate_endpoints(trace) is None

    def test_destination_must_be_last(self):
        trace = make_trace([10, 20, 30, 40], dst=99)
        assert candidate_endpoints(trace) is None


class TestClassification:
    def _revelation(self, step_reveals):
        revelation = Revelation(ingress=1, egress=2)
        revelation.step_reveals = list(step_reveals)
        revelation.revealed = list(range(sum(step_reveals)))
        return revelation

    def test_none(self):
        assert _classify(self._revelation([])) is RevelationMethod.NONE

    def test_single_hop_ambiguous(self):
        assert (
            _classify(self._revelation([1]))
            is RevelationMethod.DPR_OR_BRPR
        )

    def test_pure_dpr(self):
        assert _classify(self._revelation([3])) is RevelationMethod.DPR

    def test_pure_brpr(self):
        assert (
            _classify(self._revelation([1, 1, 1]))
            is RevelationMethod.BRPR
        )

    def test_hybrid(self):
        assert (
            _classify(self._revelation([2, 1]))
            is RevelationMethod.HYBRID
        )


class TestRevealTunnelOnTestbed:
    def test_max_steps_caps_recursion(self):
        testbed = build_gns3("backward-recursive")
        revelation = reveal_tunnel(
            testbed.prober,
            testbed.vantage_point,
            ingress=testbed.address("PE1.left"),
            egress=testbed.address("PE2.left"),
            max_steps=2,
        )
        # Two traces reveal P3 then P2; P1 stays hidden.
        assert revelation.tunnel_length == 2
        assert revelation.traces_used == 2

    def test_unrevealable_pair_counts_probes(self):
        testbed = build_gns3("totally-invisible")
        revelation = reveal_tunnel(
            testbed.prober,
            testbed.vantage_point,
            ingress=testbed.address("PE1.left"),
            egress=testbed.address("CE2.left"),
        )
        assert revelation.method is RevelationMethod.NONE
        assert revelation.traces_used == 1
        assert revelation.probes_used > 0

    def test_bogus_ingress_fails_cleanly(self):
        testbed = build_gns3("explicit-route")
        revelation = reveal_tunnel(
            testbed.prober,
            testbed.vantage_point,
            ingress=0x0A0A0A0A,  # never on the path
            egress=testbed.address("PE2.left"),
        )
        assert not revelation.success


class TestTunnelAwareTraceroute:
    def test_enriches_invisible_path(self):
        testbed = build_gns3("backward-recursive")
        tracer = TunnelAwareTraceroute(testbed.prober, trigger_threshold=2)
        enriched, revelations = tracer.trace(
            testbed.vantage_point, testbed.address("CE2.left")
        )
        assert len(revelations) == 1
        names = [testbed.name_of(a) for a in enriched]
        assert names == [
            "CE1.left", "PE1.left", "P1.left", "P2.left", "P3.left",
            "PE2.left", "CE2.left",
        ]

    def test_no_trigger_on_explicit_path(self):
        testbed = build_gns3("default")
        tracer = TunnelAwareTraceroute(testbed.prober, trigger_threshold=2)
        enriched, revelations = tracer.trace(
            testbed.vantage_point, testbed.address("CE2.left")
        )
        assert revelations == []

    def test_uhp_stays_dark(self):
        testbed = build_gns3("totally-invisible")
        tracer = TunnelAwareTraceroute(testbed.prober, trigger_threshold=2)
        enriched, revelations = tracer.trace(
            testbed.vantage_point, testbed.address("CE2.left")
        )
        assert revelations == []
        names = [testbed.name_of(a) for a in enriched]
        assert "P1.left" not in names
