"""Tests for the campaign report generator."""

import pytest

from repro.campaign.report import render_report
from repro.cli import main
from repro.experiments.common import ContextConfig, campaign_context


@pytest.fixture(scope="module")
def context():
    return campaign_context(ContextConfig())


class TestRenderReport:
    def test_sections_present(self, context):
        text = render_report(
            context.result, context.aggregator, frpla=context.frpla
        )
        assert "# Invisible MPLS tunnel campaign report" in text
        assert "## Campaign volume" in text
        assert "## Revelation methods" in text
        assert "## Per-AS summary" in text
        assert "tunnels revealed" in text

    def test_as_names_used(self, context):
        names = {3257: "Tinet Spa"}
        text = render_report(
            context.result, context.aggregator, as_names=names
        )
        assert "Tinet Spa (3257)" in text

    def test_every_candidate_as_listed(self, context):
        text = render_report(context.result, context.aggregator)
        for asn in context.aggregator.asns():
            assert str(asn) in text

    def test_custom_title(self, context):
        text = render_report(
            context.result, context.aggregator, title="My run"
        )
        assert text.startswith("# My run")


class TestCliReport:
    def test_campaign_report_flag(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["campaign", "--report", str(path)]) == 0
        content = path.read_text()
        assert "## Per-AS summary" in content
        assert "report written" in capsys.readouterr().out
