"""Tests for Mercator-style alias resolution."""


from repro.analysis.alias import (
    AliasSets,
    MercatorResolver,
    score_against_truth,
)
from repro.dataplane.engine import ForwardingEngine
from repro.net.topology import Network
from repro.probing.prober import Prober
from repro.synth.gns3 import build_gns3


class TestAliasSets:
    def test_union_find_basics(self):
        sets = AliasSets()
        sets.union(1, 2)
        sets.union(2, 3)
        assert sets.same(1, 3)
        assert not sets.same(1, 4)
        assert len(sets) == 4  # 4 was registered by the query

    def test_sets_enumeration(self):
        sets = AliasSets()
        sets.union(5, 6)
        sets.add(9)
        groups = sets.sets()
        assert {5, 6} in groups
        assert {9} in groups

    def test_alias_of_resolver(self):
        sets = AliasSets()
        sets.union(1, 2)
        resolver = sets.alias_of()
        assert resolver(1) == resolver(2)
        assert resolver(99) is None

    def test_deterministic_representative(self):
        sets = AliasSets()
        sets.union(7, 3)
        sets.union(3, 5)
        assert sets.find(7) == 3  # smallest address wins


class TestUdpProbe:
    def test_reply_from_outgoing_interface(self):
        # Triangle: VP -- R -- X; probing R's far-side interface makes
        # R answer from its VP-facing interface.
        network = Network()
        vp = network.add_router("VP", asn=1)
        r = network.add_router("R", asn=1)
        x = network.add_router("X", asn=1)
        near = network.add_link(vp, r)
        far = network.add_link(r, x)
        prober = Prober(ForwardingEngine(network))
        far_address = far.side_a.address  # R's interface toward X
        result = prober.udp_probe(vp, far_address)
        assert result.responded
        assert result.reveals_alias
        assert result.response_address == near.side_b.address

    def test_probing_near_interface_reveals_nothing(self):
        network = Network()
        vp = network.add_router("VP", asn=1)
        r = network.add_router("R", asn=1)
        near = network.add_link(vp, r)
        prober = Prober(ForwardingEngine(network))
        result = prober.udp_probe(vp, near.side_b.address)
        assert result.responded
        # Outgoing interface toward the VP *is* the probed one.
        assert not result.reveals_alias

    def test_silent_router(self):
        network = Network()
        vp = network.add_router("VP", asn=1)
        r = network.add_router("R", asn=1)
        network.add_link(vp, r)
        r.icmp_enabled = False
        prober = Prober(ForwardingEngine(network))
        result = prober.udp_probe(vp, r.loopback)
        assert not result.responded


class TestMercatorOnTestbed:
    def test_resolves_router_interfaces(self):
        testbed = build_gns3("explicit-route")
        # Collect every AS2 interface address via DPR-style tracing.
        addresses = set()
        for target in ("CE2.left", "PE2.left"):
            trace = testbed.traceroute(target)
            addresses.update(trace.addresses)
        # Add the routers' right-side interfaces via direct probing.
        for name in ("P1", "P2", "P3"):
            addresses.add(testbed.address(f"{name}.right"))
        resolver = MercatorResolver(
            prober=testbed.prober,
            vantage_point=testbed.vantage_point,
        )
        sets = resolver.resolve(addresses)
        # left and right interface of each P router must be merged.
        for name in ("P1", "P2", "P3"):
            assert sets.same(
                testbed.address(f"{name}.left"),
                testbed.address(f"{name}.right"),
            )
        assert resolver.aliases_found >= 3

    def test_scoring_against_ground_truth(self):
        testbed = build_gns3("explicit-route")
        addresses = set(testbed.traceroute("PE2.left").addresses)
        for name in ("P1", "P2", "P3"):
            addresses.add(testbed.address(f"{name}.right"))
        resolver = MercatorResolver(
            prober=testbed.prober,
            vantage_point=testbed.vantage_point,
        )
        sets = resolver.resolve(addresses)
        precision, recall = score_against_truth(
            sets, testbed.network.owner_of, addresses
        )
        assert precision == 1.0  # Mercator never lies in-simulator
        assert recall > 0.3  # but misses pairs it cannot witness

    def test_never_merges_distinct_routers(self):
        testbed = build_gns3("explicit-route")
        addresses = set(testbed.traceroute("PE2.left").addresses)
        resolver = MercatorResolver(
            prober=testbed.prober,
            vantage_point=testbed.vantage_point,
        )
        sets = resolver.resolve(addresses)
        for group in sets.sets():
            owners = {testbed.network.owner_of(a) for a in group}
            owners.discard(None)
            assert len(owners) <= 1
