"""End-to-end checks of the four techniques on the GNS3 testbed.

Each technique is exercised against the scenario it targets (Table 2 /
Table 6): BRPR on the Cisco all-prefixes config, DPR on the
loopback-only config, RTLA on a Juniper-edge variant, FRPLA on all of
them, and nothing on the totally-invisible UHP config.
"""

import pytest

from repro.core.brpr import backward_recursive_revelation
from repro.core.dpr import direct_path_revelation
from repro.core.frpla import rfa_of_hop
from repro.core.revelation import (
    RevelationMethod,
    candidate_endpoints,
    reveal_tunnel,
)
from repro.core.rtla import RtlaAnalyzer
from repro.core.signatures import SignatureInventory
from repro.net.vendors import JUNIPER
from repro.synth.gns3 import build_gns3


@pytest.fixture(scope="module")
def backward():
    return build_gns3("backward-recursive")


@pytest.fixture(scope="module")
def explicit_route():
    return build_gns3("explicit-route")


@pytest.fixture(scope="module")
def invisible():
    return build_gns3("totally-invisible")


class TestCandidateSelection:
    def test_candidates_are_the_ler_pair(self, backward):
        trace = backward.traceroute("CE2.left")
        pair = candidate_endpoints(trace)
        assert pair == (
            backward.address("PE1.left"),
            backward.address("PE2.left"),
        )

    def test_no_candidates_when_destination_unreached(self, backward):
        trace = backward.traceroute("CE2.left", max_ttl=2)
        assert candidate_endpoints(trace) is None


class TestBrpr:
    def test_reveals_all_three_lsrs_in_order(self, backward):
        result = backward_recursive_revelation(
            backward.prober,
            backward.vantage_point,
            ingress=backward.address("PE1.left"),
            egress=backward.address("PE2.left"),
        )
        assert result.success
        names = [backward.name_of(a) for a in result.revealed]
        assert names == ["P1.left", "P2.left", "P3.left"]

    def test_no_labels_during_recursion(self, backward):
        result = backward_recursive_revelation(
            backward.prober,
            backward.vantage_point,
            ingress=backward.address("PE1.left"),
            egress=backward.address("PE2.left"),
        )
        assert not any(step.labels_seen for step in result.steps)

    def test_combined_pipeline_classifies_brpr(self, backward):
        revelation = reveal_tunnel(
            backward.prober,
            backward.vantage_point,
            ingress=backward.address("PE1.left"),
            egress=backward.address("PE2.left"),
        )
        assert revelation.method is RevelationMethod.BRPR
        assert revelation.tunnel_length == 3
        assert revelation.step_reveals == [1, 1, 1]


class TestDpr:
    def test_reveals_whole_lsp_in_one_trace(self, explicit_route):
        result = direct_path_revelation(
            explicit_route.prober,
            explicit_route.vantage_point,
            ingress=explicit_route.address("PE1.left"),
            egress=explicit_route.address("PE2.left"),
        )
        assert result.success
        names = [explicit_route.name_of(a) for a in result.revealed]
        assert names == ["P1.left", "P2.left", "P3.left"]
        assert not result.labels_seen

    def test_combined_pipeline_classifies_dpr(self, explicit_route):
        revelation = reveal_tunnel(
            explicit_route.prober,
            explicit_route.vantage_point,
            ingress=explicit_route.address("PE1.left"),
            egress=explicit_route.address("PE2.left"),
        )
        assert revelation.method is RevelationMethod.DPR
        assert revelation.tunnel_length == 3
        assert revelation.step_reveals == [3]


class TestTotallyInvisible:
    def test_nothing_revealed_under_uhp(self, invisible):
        trace = invisible.traceroute("CE2.left")
        pair = candidate_endpoints(trace)
        # PE2 is hidden entirely: candidates are PE1 and CE2 itself.
        assert pair is not None
        revelation = reveal_tunnel(
            invisible.prober, invisible.vantage_point, *pair
        )
        assert revelation.method is RevelationMethod.NONE
        assert not revelation.success


class TestFrpla:
    def test_rfa_baseline_zero_without_tunnel(self):
        testbed = build_gns3("default")
        trace = testbed.traceroute("CE2.left")
        for hop in trace.hops[:-1]:  # last hop is the echo-reply
            sample = rfa_of_hop(hop)
            if sample is None:
                continue
            # LSR replies detour via the tunnel end; skip labelled hops.
            if hop.has_labels:
                continue
            assert sample.rfa == 0, testbed.name_of(hop.address)

    def test_rfa_shift_equals_hidden_hop_count(self, backward):
        trace = backward.traceroute("CE2.left")
        egress_hop = trace.hop_of(backward.address("PE2.left"))
        sample = rfa_of_hop(egress_hop)
        assert sample.rfa == 3  # the three hidden LSRs

    def test_no_rfa_shift_under_uhp(self, invisible):
        # Under UHP no time-exceeded ever leaves the MPLS AS, so the
        # only usable hops are outside it — all with baseline RFA —
        # and the destination's echo-reply shows (almost) no deficit:
        # the min rule never ran on the return tunnel.
        trace = invisible.traceroute("CE2.left")
        te_samples = [
            rfa_of_hop(hop) for hop in trace.hops if rfa_of_hop(hop)
        ]
        assert all(sample.rfa == 0 for sample in te_samples)
        final = trace.hops[-1]
        assert final.reply_kind == "echo-reply"
        return_length = 255 - final.reply_ttl + 1
        # 3 hidden LSRs + hidden egress: a PHP tunnel would show +4;
        # UHP leaks at most the egress's own decrement.
        assert return_length - final.probe_ttl <= 1


class TestRtla:
    @pytest.fixture(scope="class")
    def juniper_backward(self):
        return build_gns3("backward-recursive", vendor=JUNIPER)

    def test_gap_equals_return_tunnel_length(self, juniper_backward):
        testbed = juniper_backward
        analyzer = RtlaAnalyzer()
        analyzer.add_trace(testbed.traceroute("CE2.left"))
        analyzer.add_ping(
            testbed.prober.ping(
                testbed.vantage_point, testbed.address("PE2.left")
            )
        )
        estimate = analyzer.estimate(testbed.address("PE2.left"))
        assert estimate is not None
        assert estimate.tunnel_length == 3

    def test_rtla_refuses_cisco_signature(self, backward):
        analyzer = RtlaAnalyzer()
        analyzer.add_trace(backward.traceroute("CE2.left"))
        analyzer.add_ping(
            backward.prober.ping(
                backward.vantage_point, backward.address("PE2.left")
            )
        )
        assert analyzer.estimate(backward.address("PE2.left")) is None

    def test_signature_inference(self, juniper_backward):
        testbed = juniper_backward
        inventory = SignatureInventory()
        inventory.observe_trace(testbed.traceroute("CE2.left"))
        inventory.observe_ping(
            testbed.prober.ping(
                testbed.vantage_point, testbed.address("PE2.left")
            )
        )
        signature = inventory.signature(testbed.address("PE2.left"))
        assert signature.pair == (255, 64)
        assert signature.brand == "juniper"
