"""Integration test for the two-phase HDN-driven campaign (Sec. 4)."""

import pytest

from repro.campaign.hdn_driven import run_hdn_driven_campaign
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


@pytest.fixture(scope="module")
def outcome():
    internet = build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.8)),
            vantage_points=6,
            stubs_per_transit=4,
            seed=2016,
        )
    )
    result = run_hdn_driven_campaign(
        prober=internet.prober,
        vantage_points=internet.vps,
        bootstrap_targets=internet.campaign_targets(),
        asn_of=internet.asn_of_address,
        hdn_threshold=6,
        alias_of=lambda a: (
            internet.router_of_address(a).name
            if internet.router_of_address(a)
            else None
        ),
        restrict_to_asns=internet.transit_asns,
    )
    return internet, result


class TestHdnDrivenCampaign:
    def test_bootstrap_builds_graph(self, outcome):
        _, result = outcome
        assert result.bootstrap_traces
        assert len(result.bootstrap_graph) > 20

    def test_hdns_are_transit_routers(self, outcome):
        internet, result = outcome
        assert result.hdn_count >= 1
        for hdn in result.selection.hdns:
            asn = result.bootstrap_graph.asn_of_node(hdn)
            assert asn in internet.profiles

    def test_targets_surround_hdns(self, outcome):
        _, result = outcome
        selection = result.selection
        assert selection.destinations
        # Sets A and B never contain the HDNs themselves.
        assert not (set(selection.hdns) & selection.target_nodes)

    def test_focused_campaign_reveals_tunnels(self, outcome):
        internet, result = outcome
        campaign = result.campaign
        assert campaign is not None
        assert campaign.pairs, "HDN filter left no candidate pairs"
        # Every pair's endpoints carry HDN addresses by construction.
        hdn_addresses = result.selection.hdn_addresses
        for pair in campaign.pairs:
            assert pair.ingress in hdn_addresses
            assert pair.egress in hdn_addresses
        assert campaign.successful_revelations()

    def test_revealed_content_is_genuine(self, outcome):
        internet, result = outcome
        for revelation in result.campaign.successful_revelations():
            asn = internet.asn_of_address(revelation.ingress)
            for address in revelation.revealed:
                assert internet.asn_of_address(address) == asn


class TestDegenerateInputs:
    def test_huge_threshold_short_circuits(self):
        internet = build_internet(
            InternetConfig(
                profiles=tuple(paper_profiles(0.4)),
                vantage_points=2,
                stubs_per_transit=2,
                seed=3,
            )
        )
        result = run_hdn_driven_campaign(
            prober=internet.prober,
            vantage_points=internet.vps,
            bootstrap_targets=internet.campaign_targets()[:6],
            asn_of=internet.asn_of_address,
            hdn_threshold=10_000,
        )
        assert result.hdn_count == 0
        assert result.campaign is None
