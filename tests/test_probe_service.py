"""Unit tests for the measurement service (budgets, retries, cache)."""

import pytest

from repro.measure import (
    ECHO_REPLY,
    BudgetExceeded,
    MeasurementPolicy,
    ProbeBackend,
    ProbeReply,
    ProbeRequest,
    ProbeService,
    as_probe_service,
)
from repro.obs import Obs
from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


class FakeBackend(ProbeBackend):
    """Deterministic scripted backend: echo-replies everything, except
    destinations listed in ``flaky`` which time out that many times
    before answering."""

    name = "fake"

    def __init__(self, flaky=None):
        self.obs = Obs()
        self.submitted = []
        self.batch_calls = 0
        self._flaky = dict(flaky or {})

    def submit(self, request):
        self.submitted.append(request)
        remaining = self._flaky.get(request.dst, 0)
        if remaining > 0:
            self._flaky[request.dst] = remaining - 1
            return ProbeReply(probe_ttl=request.ttl)
        return ProbeReply(
            probe_ttl=request.ttl,
            reply_kind=ECHO_REPLY,
            responder=request.dst,
            reply_ttl=250,
            rtt_ms=5.0,
        )

    def submit_batch(self, requests):
        self.batch_calls += 1
        return [self.submit(request) for request in requests]


def _service(policy=None, flaky=None):
    backend = FakeBackend(flaky=flaky)
    return ProbeService(backend, policy=policy), backend


class TestBudgets:
    def test_global_budget_caps_probes(self):
        service, backend = _service(
            MeasurementPolicy(probe_budget=3)
        )
        for dst in (1, 2, 3):
            service.ping_probe("VP", dst, flow_id=9)
        with pytest.raises(BudgetExceeded) as excinfo:
            service.ping_probe("VP", 4, flow_id=9)
        assert excinfo.value.scope == "campaign"
        assert excinfo.value.budget == 3
        assert excinfo.value.spent == 3
        assert service.probes_sent == 3
        assert len(backend.submitted) == 3
        assert service.obs.metrics.get("measure.budget.denied") == 1

    def test_scope_budget_only_bites_inside_the_scope(self):
        service, _ = _service(
            MeasurementPolicy(scope_budgets={"revelation": 2})
        )
        service.ping_probe("VP", 1, flow_id=9)  # outside: unmetered
        with service.scope("revelation"):
            service.ping_probe("VP", 2, flow_id=9)
            service.ping_probe("VP", 3, flow_id=9)
            with pytest.raises(BudgetExceeded) as excinfo:
                service.ping_probe("VP", 4, flow_id=9)
        assert excinfo.value.scope == "revelation"
        assert service.scope_spent("revelation") == 2
        service.ping_probe("VP", 5, flow_id=9)  # outside again: fine

    def test_nested_same_name_scope_charges_once(self):
        service, _ = _service(
            MeasurementPolicy(scope_budgets={"revelation": 2})
        )
        with service.scope("revelation"), service.scope("revelation"):
            service.ping_probe("VP", 1, flow_id=9)
        assert service.scope_spent("revelation") == 1

    def test_exempt_budgets_disables_enforcement(self):
        service, _ = _service(MeasurementPolicy(probe_budget=1))
        service.exempt_budgets()
        for dst in range(5):
            service.ping_probe("VP", dst, flow_id=9)
        assert service.probes_sent == 5

    def test_batch_admission_is_all_or_nothing(self):
        service, backend = _service(MeasurementPolicy(probe_budget=2))
        requests = [
            ProbeRequest("VP", dst, 64, 9) for dst in (1, 2, 3)
        ]
        with pytest.raises(BudgetExceeded):
            service.ping_batch(requests)
        # Nothing was submitted: the budget could not cover the batch.
        assert backend.submitted == []
        assert service.probes_sent == 0


class TestRetries:
    def test_timeouts_are_retried_until_answered(self):
        service, backend = _service(
            MeasurementPolicy(max_retries=2), flaky={7: 2}
        )
        reply = service.ping_probe("VP", 7, flow_id=9)
        assert reply.reply_kind == ECHO_REPLY
        assert len(backend.submitted) == 3
        assert service.obs.metrics.get("measure.retries") == 2

    def test_retries_exhausted_returns_timeout(self):
        service, backend = _service(
            MeasurementPolicy(max_retries=1), flaky={7: 5}
        )
        reply = service.ping_probe("VP", 7, flow_id=9)
        assert reply.reply_kind is None
        assert len(backend.submitted) == 2

    def test_no_retries_by_default(self):
        service, backend = _service(flaky={7: 1})
        reply = service.ping_probe("VP", 7, flow_id=9)
        assert reply.reply_kind is None
        assert len(backend.submitted) == 1


class TestCache:
    def test_cache_off_by_default(self):
        service, backend = _service()
        service.ping_probe("VP", 1, flow_id=9)
        service.ping_probe("VP", 1, flow_id=9)
        assert len(backend.submitted) == 2
        assert service.cached_replies == 0

    def test_ping_mode_dedupes_repeat_pings(self):
        service, backend = _service(
            MeasurementPolicy(cache_mode="ping")
        )
        first = service.ping_probe("VP", 1, flow_id=9)
        second = service.ping_probe("VP", 1, flow_id=9)
        assert second is first
        assert len(backend.submitted) == 1
        assert service.obs.metrics.get("measure.cache.hits") == 1

    def test_ping_cache_is_per_source(self):
        service, backend = _service(
            MeasurementPolicy(cache_mode="ping")
        )
        service.ping_probe("VP1", 1, flow_id=9)
        service.ping_probe("VP2", 1, flow_id=9)
        assert len(backend.submitted) == 2

    def test_seed_ping_serves_later_pings(self):
        service, backend = _service(
            MeasurementPolicy(cache_mode="ping")
        )
        seeded = ProbeReply(
            probe_ttl=5, reply_kind=ECHO_REPLY, responder=1,
            reply_ttl=250, rtt_ms=4.0,
        )
        service.seed_ping("VP", 1, 9, seeded)
        reply = service.ping_probe("VP", 1, flow_id=9)
        assert reply is seeded
        assert backend.submitted == []
        assert service.obs.metrics.get("measure.cache.seeded") == 1

    def test_seed_ping_noop_when_cache_off(self):
        service, backend = _service()
        service.seed_ping(
            "VP", 1, 9, ProbeReply(probe_ttl=5, reply_kind=ECHO_REPLY)
        )
        assert service.cached_replies == 0

    def test_all_mode_caches_traceroute_probes(self):
        service, backend = _service(
            MeasurementPolicy(cache_mode="all")
        )
        service.traceroute_probe("VP", 1, ttl=3, flow_id=9)
        service.traceroute_probe("VP", 1, ttl=3, flow_id=9)
        service.traceroute_probe("VP", 1, ttl=4, flow_id=9)
        assert len(backend.submitted) == 2

    def test_flush_cache_forces_remeasurement(self):
        service, backend = _service(
            MeasurementPolicy(cache_mode="ping")
        )
        service.ping_probe("VP", 1, flow_id=9)
        service.flush_cache()
        service.ping_probe("VP", 1, flow_id=9)
        assert len(backend.submitted) == 2
        assert service.obs.metrics.get("measure.cache.flushes") == 1


class TestBatchSubmission:
    def test_batch_goes_through_backend_batch_path(self):
        service, backend = _service()
        replies = service.ping_batch(
            [ProbeRequest("VP", dst, 64, 9) for dst in (1, 2, 3)]
        )
        assert backend.batch_calls == 1
        assert [r.responder for r in replies] == [1, 2, 3]
        assert service.probes_sent == 3

    def test_batch_serves_cached_entries_first(self):
        service, backend = _service(
            MeasurementPolicy(cache_mode="ping")
        )
        service.ping_probe("VP", 2, flow_id=9)
        replies = service.ping_batch(
            [ProbeRequest("VP", dst, 64, 9) for dst in (1, 2, 3)]
        )
        assert [r.responder for r in replies] == [1, 2, 3]
        # Only the two uncached requests hit the backend.
        assert len(backend.submitted) == 3
        assert service.obs.metrics.get("measure.cache.hits") == 1


class TestCoercion:
    def test_as_probe_service_accepts_backend(self):
        backend = FakeBackend()
        service = as_probe_service(backend)
        assert isinstance(service, ProbeService)
        assert service.backend is backend

    def test_as_probe_service_passes_service_through(self):
        service, _ = _service()
        assert as_probe_service(service) is service

    def test_as_probe_service_rejects_junk(self):
        with pytest.raises(TypeError):
            as_probe_service(object())


class TestCampaignIntegration:
    @pytest.fixture(scope="class")
    def internet(self):
        return build_internet(
            InternetConfig(
                profiles=tuple(paper_profiles(0.4)),
                vantage_points=3,
                stubs_per_transit=2,
                seed=11,
            )
        )

    def test_ping_phase_dedupes_trace_destinations(self, internet):
        campaign = Campaign(
            internet.prober,
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(internet.transit_asns)
            ),
        )
        campaign.run(internet.campaign_targets())
        metrics = campaign.obs.metrics
        # Reached destinations are pinged from the trace-phase cache,
        # never re-probed on the wire.
        assert metrics.get("campaign.pings_saved") > 0
        assert (
            metrics.get("campaign.pings_saved")
            == metrics.get("measure.cache.hits")
        )

    def test_budget_capped_run_reports_partial(self, internet):
        from repro.measure import SimBackend
        from repro.probing.prober import Prober

        # A fresh prober/service: budgets count from zero.
        campaign = Campaign(
            Prober(SimBackend(internet.engine)),
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(internet.transit_asns),
                probe_budget=40,
            ),
        )
        result = campaign.run(internet.campaign_targets())
        assert result.partial
        assert "probe budget exhausted" in result.stop_reason
        assert result.probes_sent <= 40
        assert campaign.obs.metrics.get("campaign.partial_runs") >= 1
