"""Tests for routing-asymmetry measurement."""


from repro.analysis.asymmetry import (
    AsymmetryReport,
    PathPair,
    measure_asymmetry,
)
from repro.dataplane.engine import ForwardingEngine
from repro.net.topology import Network
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


class TestPathPair:
    def test_symmetric_pair(self):
        pair = PathPair(
            source="a", dst=1,
            forward=("a", "b", "c"), reverse=("c", "b", "a"),
        )
        assert pair.symmetric
        assert pair.length_difference == 0

    def test_asymmetric_lengths(self):
        pair = PathPair(
            source="a", dst=1,
            forward=("a", "b", "c"), reverse=("c", "x", "y", "a"),
        )
        assert not pair.symmetric
        assert pair.length_difference == 1

    def test_report_aggregates(self):
        report = AsymmetryReport(
            pairs=[
                PathPair("a", 1, ("a", "b"), ("b", "a")),
                PathPair("a", 2, ("a", "b", "c"), ("c", "a")),
            ]
        )
        assert report.symmetric_fraction == 0.5
        assert report.length_differences().values == [0, -1]
        assert report.centred()

    def test_empty_report(self):
        report = AsymmetryReport()
        assert report.symmetric_fraction == 0.0
        assert not report.centred()


class TestMeasureOnChain:
    def test_chain_is_fully_symmetric(self):
        network = Network()
        routers = [network.add_router(f"R{i}", asn=1) for i in range(4)]
        for a, b in zip(routers, routers[1:]):
            network.add_link(a, b)
        engine = ForwardingEngine(network)
        report = measure_asymmetry(
            engine,
            sources=[routers[0]],
            destinations=[routers[3].loopback],
            owner_of=network.owner_of,
        )
        assert len(report.pairs) == 1
        assert report.symmetric_fraction == 1.0
        assert report.centred(tolerance=0)

    def test_asymmetric_weights_break_symmetry(self):
        # A ring where directional weights force different directions.
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=1)
        d = network.add_router("D", asn=1)
        network.add_link(a, b, weight=1, weight_back=10)
        network.add_link(b, d, weight=1, weight_back=10)
        network.add_link(a, c, weight=10, weight_back=1)
        network.add_link(c, d, weight=10, weight_back=1)
        engine = ForwardingEngine(network)
        report = measure_asymmetry(
            engine,
            sources=[a],
            destinations=[d.loopback],
            owner_of=network.owner_of,
        )
        pair = report.pairs[0]
        assert not pair.symmetric
        assert pair.forward == ("A", "B", "D")
        assert pair.reverse == ("D", "C", "A")
        # Same lengths though: difference still 0.
        assert pair.length_difference == 0


class TestMeasureOnInternet:
    def test_frpla_assumption_holds(self):
        # Aggregate over several seeds: a single small topology can be
        # systematically lopsided, which is exactly why the paper runs
        # FRPLA over *many* vantage/ingress pairs before concluding.
        pairs = []
        symmetric_seen = False
        for seed in (1, 2, 3, 4):
            internet = build_internet(
                InternetConfig(
                    profiles=tuple(paper_profiles(0.5)),
                    vantage_points=4,
                    stubs_per_transit=2,
                    seed=seed,
                )
            )
            report = measure_asymmetry(
                internet.engine,
                sources=internet.vps[:2],
                destinations=internet.campaign_targets()[:12],
                owner_of=internet.router_of_address,
            )
            pairs.extend(report.pairs)
            symmetric_seen |= report.symmetric_fraction < 1.0
        combined = AsymmetryReport(pairs=pairs)
        assert combined.pairs
        # Hot potato produces some asymmetric pairs...
        assert symmetric_seen
        # ...but the length difference stays centred near zero: the
        # condition FRPLA needs (Sec. 3.4).
        assert combined.centred(tolerance=1.0)
