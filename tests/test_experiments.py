"""Shape tests for every experiment module (the paper's deliverables).

The benchmarks time these; here we assert the *scientific* shape
claims on the default campaign so a regression in any layer surfaces
as a failed experiment, not just a changed number.
"""


from repro.experiments import (
    fig01_degree,
    fig04_gns3,
    fig05_ftl,
    fig06_rtt,
    fig07_rfa,
    fig08_te_er,
    fig09_rtla,
    fig10_degree,
    fig11_pathlen,
    table1_signatures,
    table2_visibility,
    table3_crossval,
    table4_per_as,
    table5_deployment,
    table6_applicability,
)
from repro.experiments.common import format_table


class TestTestbedExperiments:
    def test_table1_all_signatures_match(self):
        result = table1_signatures.run()
        assert result.all_match
        assert len(result.signatures) == 4

    def test_table2_grid_fully_consistent(self):
        result = table2_visibility.run()
        assert len(result.cells) == 16
        assert result.all_match

    def test_table6_matrix_verified(self):
        result = table6_applicability.run()
        assert result.all_verified

    def test_fig04_transcripts_complete(self):
        result = fig04_gns3.run()
        assert len(result.transcripts["backward-recursive"]) == 5
        assert "MPLS Label" in result.transcripts["default"][0]
        assert "MPLS Label" not in "".join(
            result.transcripts["backward-recursive"]
        )


class TestCampaignExperiments:
    def test_fig01_heavy_tail(self):
        result = fig01_degree.run()
        assert result.hdn_count >= 1
        # The tail exists: max degree well above the median degree.
        pdf = dict(result.pdf)
        assert result.max_degree >= 6

    def test_fig05_decreasing_tail(self):
        result = fig05_ftl.run()
        lengths = sorted(
            value
            for dist in result.by_method.values()
            for value in dist
        )
        assert lengths[0] >= 2  # hop distances start at 2 (1 LSR)
        # Short tunnels dominate: the median sits in the bottom half.
        mid = lengths[len(lengths) // 2]
        assert mid <= (lengths[0] + lengths[-1]) / 2 + 1

    def test_fig06_jump_decomposed(self):
        result = fig06_rtt.run()
        assert result.tunnel_length >= 1
        assert result.visible_jump_ms <= result.invisible_jump_ms
        revealed = [p for p in result.visible if p.revealed]
        assert len(revealed) == result.tunnel_length

    def test_fig07_shift_and_correction(self):
        result = fig07_rfa.run()
        medians = result.medians()
        # Egress LERs with revealed tunnels sit clearly above the
        # baseline curves (the paper's medians: 4 vs ~1; our synthetic
        # tunnels are shorter, so the gap scales down with them).
        assert medians["egress_pr"] > medians["others"]
        assert (
            result.egress_pr.mean - result.others.mean >= 0.5
        )
        assert result.egress_pr.fraction(lambda v: v > 0) >= 0.8
        assert abs(medians["corrected"]) <= 1

    def test_fig08_te_shifted_er_centred(self):
        result = fig08_te_er.run()
        assert result.time_exceeded.median > result.echo_reply.median

    def test_fig09_asymmetry_centred(self):
        result = fig09_rtla.run()
        assert abs(result.tunnel_asymmetry.median) <= 1
        assert result.return_tunnel_lengths.min >= 0

    def test_fig10_focus_as_mesh_collapses(self):
        result = fig10_degree.run()
        assert result.focus_asn is not None
        assert result.visible_focus.mean < result.invisible_focus.mean

    def test_fig11_routes_lengthen(self):
        result = fig11_pathlen.run()
        assert result.mean_shift > 0

    def test_table3_success_dominates(self):
        result = table3_crossval.run()
        assert result.success_rate >= 0.8
        assert result.tunnels_found >= 10

    def test_table4_2856_dark_and_densities_drop(self):
        result = table4_per_as.run()
        assert result.rows[2856].revealed_pairs == 0
        drops = [
            row.density_before - row.density_after
            for row in result.rows.values()
            if row.ie_pairs > 0 and row.revealed_pairs > 0
        ]
        assert drops and max(drops) > 0

    def test_table5_vendor_technique_correlation(self):
        result = table5_deployment.run()
        juniper_heavy = result.rows[3257]
        cisco_heavy = result.rows[3491]
        assert juniper_heavy.technique_shares.get("dpr", 0) > 0.5
        assert cisco_heavy.technique_shares.get(
            "brpr", 0
        ) + cisco_heavy.technique_shares.get("dpr-or-brpr", 0) > 0.5

    def test_table5_estimators_agree_roughly(self):
        result = table5_deployment.run()
        for row in result.rows.values():
            if row.ftl_median is None or row.frpla_median is None:
                continue
            # FRPLA is asymmetry-noisy but should be within a few hops
            # of the revealed truth (Table 5's message).
            assert abs(row.frpla_median - row.ftl_median) <= 3


class TestRendering:
    def test_every_experiment_renders_text(self):
        for module in (
            fig01_degree, fig05_ftl, fig06_rtt, fig07_rfa, fig08_te_er,
            fig09_rtla, fig10_degree, fig11_pathlen, table3_crossval,
            table4_per_as, table5_deployment,
        ):
            text = module.run().text
            assert isinstance(text, str) and text

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 22), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len(lines) == 5
