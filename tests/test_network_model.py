"""Unit tests for routers, links, topology container, vendor profiles."""

import pytest

from repro.mpls.config import MplsConfig, PoppingMode
from repro.net.addressing import Prefix, parse_address
from repro.net.topology import Network
from repro.net.vendors import (
    BROCADE,
    CISCO,
    JUNIPER,
    JUNIPER_E,
    LdpPolicy,
    PROFILES,
    profile_named,
)


class TestVendorProfiles:
    def test_table1_signatures(self):
        assert CISCO.signature == (255, 255)
        assert JUNIPER.signature == (255, 64)
        assert JUNIPER_E.signature == (128, 128)
        assert BROCADE.signature == (64, 64)

    def test_ldp_defaults(self):
        assert CISCO.ldp_policy is LdpPolicy.ALL_PREFIXES
        assert JUNIPER.ldp_policy is LdpPolicy.LOOPBACK_ONLY

    def test_registry(self):
        assert set(PROFILES) == {"cisco", "juniper", "junos-e", "brocade"}
        assert profile_named("cisco") is CISCO
        with pytest.raises(KeyError):
            profile_named("huawei")


class TestMplsConfig:
    def test_disabled(self):
        config = MplsConfig.disabled()
        assert not config.enabled
        assert not config.invisible

    def test_from_vendor_inherits_policy(self):
        config = MplsConfig.from_vendor(JUNIPER)
        assert config.enabled
        assert config.ldp_policy is LdpPolicy.LOOPBACK_ONLY
        assert config.popping is PoppingMode.PHP

    def test_invisible_flag(self):
        visible = MplsConfig.from_vendor(CISCO, ttl_propagate=True)
        hidden = MplsConfig.from_vendor(CISCO, ttl_propagate=False)
        assert not visible.invisible
        assert hidden.invisible

    def test_with_overrides_is_copy(self):
        base = MplsConfig.from_vendor(CISCO)
        derived = base.with_overrides(popping=PoppingMode.UHP)
        assert base.popping is PoppingMode.PHP
        assert derived.popping is PoppingMode.UHP


class TestRouter:
    def test_initial_ttls_per_message(self):
        network = Network()
        router = network.add_router("R", asn=1, vendor=JUNIPER)
        assert router.initial_ttl("time-exceeded") == 255
        assert router.initial_ttl("echo-reply") == 64
        assert router.initial_ttl("echo-request") == 64
        with pytest.raises(ValueError):
            router.initial_ttl("redirect")

    def test_owns_loopback_and_interfaces(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        link = network.add_link(a, b)
        assert a.owns(a.loopback)
        assert a.owns(link.side_a.address)
        assert not a.owns(link.side_b.address)

    def test_incoming_address(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        network.add_link(a, b)
        incoming = b.incoming_address_from(a)
        assert b.owns(incoming)
        assert b.incoming_address_from(b) is None

    def test_duplicate_interface_name_rejected(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=1)
        network.add_link(a, b, if_name_a="x")
        with pytest.raises(ValueError):
            network.add_link(a, c, if_name_a="x")

    def test_neighbors(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=1)
        network.add_link(a, b)
        network.add_link(a, c)
        assert {r.name for r in a.neighbors()} == {"B", "C"}


class TestNetworkContainer:
    def test_duplicate_router_rejected(self):
        network = Network()
        network.add_router("A", asn=1)
        with pytest.raises(ValueError):
            network.add_router("A", asn=2)

    def test_self_link_rejected(self):
        network = Network()
        a = network.add_router("A", asn=1)
        with pytest.raises(ValueError):
            network.add_link(a, a)

    def test_owner_and_prefix_lookup(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=2)
        link = network.add_link(a, b)
        assert network.owner_of(a.loopback) is a
        assert network.prefix_of(link.side_a.address) == link.prefix
        assert network.asn_of_prefix(link.prefix) == 1  # side a's AS
        assert network.asn_of_address(b.loopback) == 2

    def test_explicit_link_prefix(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        prefix = Prefix.parse("192.0.2.0/30")
        link = network.add_link(a, b, prefix=prefix)
        assert link.prefix == prefix
        assert link.side_a.address == parse_address("192.0.2.1")

    def test_link_prefix_too_small(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        with pytest.raises(ValueError):
            network.add_link(a, b, prefix=Prefix.parse("192.0.2.1/32"))

    def test_border_routers(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=2)
        network.add_link(a, b)
        network.add_link(b, c)
        assert network.border_routers(1) == [b]
        assert network.border_routers(2) == [c]

    def test_internal_prefixes(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        link = network.add_link(a, b)
        prefixes = network.internal_prefixes(1)
        assert Prefix(a.loopback, 32) in prefixes
        assert link.prefix in prefixes

    def test_intra_and_inter_links(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=2)
        intra = network.add_link(a, b)
        inter = network.add_link(b, c)
        assert list(network.intra_as_links(1)) == [intra]
        assert list(network.inter_as_links()) == [inter]
        assert not intra.inter_as
        assert inter.inter_as

    def test_link_weight_from(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=1)
        link = network.add_link(a, b, weight=2, weight_back=7)
        assert link.weight_from(a) == 2
        assert link.weight_from(b) == 7
        with pytest.raises(ValueError):
            link.weight_from(c)

    def test_link_other_side(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=1)
        link = network.add_link(a, b)
        other_link = network.add_link(a, c)
        assert link.other(link.side_a) is link.side_b
        with pytest.raises(ValueError):
            link.other(other_link.side_a)

    def test_validate_passes_on_clean_topology(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        network.add_link(a, b)
        network.validate()

    def test_asns_sorted(self):
        network = Network()
        network.add_router("A", asn=7)
        network.add_router("B", asn=3)
        assert network.asns() == [3, 7]
