"""Tests for IOS-style configuration generation."""

import pytest

from repro.net.addressing import format_address
from repro.synth.gns3 import build_gns3
from repro.synth.ios_config import network_configs, router_config


@pytest.fixture(scope="module")
def scenarios():
    return {
        name: build_gns3(name)
        for name in (
            "default",
            "backward-recursive",
            "explicit-route",
            "totally-invisible",
        )
    }


class TestMplsKnobs:
    def test_default_has_plain_ldp(self, scenarios):
        config = router_config(scenarios["default"].network.router("PE1"))
        assert "mpls label protocol ldp" in config
        assert "no mpls ip propagate-ttl" not in config
        assert "host-routes" not in config
        assert "explicit-null" not in config

    def test_backward_recursive_disables_propagation(self, scenarios):
        config = router_config(
            scenarios["backward-recursive"].network.router("PE1")
        )
        assert "no mpls ip propagate-ttl" in config

    def test_explicit_route_filters_ldp(self, scenarios):
        config = router_config(
            scenarios["explicit-route"].network.router("P2")
        )
        assert "mpls ldp label allocate global host-routes" in config
        assert "no mpls ip propagate-ttl" in config

    def test_totally_invisible_uses_explicit_null(self, scenarios):
        config = router_config(
            scenarios["totally-invisible"].network.router("PE2")
        )
        assert "mpls ldp explicit-null" in config

    def test_non_mpls_router_has_no_mpls_lines(self, scenarios):
        config = router_config(scenarios["default"].network.router("CE1"))
        assert "mpls" not in config


class TestStructure:
    def test_hostname_and_loopback(self, scenarios):
        testbed = scenarios["default"]
        router = testbed.network.router("P1")
        config = router_config(router)
        assert f"hostname P1" in config
        assert format_address(router.loopback) in config
        assert "interface Loopback0" in config

    def test_interfaces_listed_with_neighbors(self, scenarios):
        testbed = scenarios["default"]
        config = router_config(testbed.network.router("P2"))
        assert "description to P1" in config
        assert "description to P3" in config

    def test_intra_as_interfaces_run_mpls(self, scenarios):
        testbed = scenarios["default"]
        config = router_config(testbed.network.router("PE1"))
        # The CE1-facing interface is inter-AS: no "mpls ip" there.
        blocks = config.split("interface ")
        ce_block = next(b for b in blocks if "description to CE1" in b)
        p_block = next(b for b in blocks if "description to P1" in b)
        assert " mpls ip" not in ce_block
        assert " mpls ip" in p_block

    def test_ospf_covers_loopback_and_links(self, scenarios):
        testbed = scenarios["default"]
        router = testbed.network.router("P1")
        config = router_config(router)
        assert "router ospf 1" in config
        assert (
            f"network {format_address(router.loopback)} 0.0.0.0 area 0"
            in config
        )

    def test_bgp_only_on_borders(self, scenarios):
        testbed = scenarios["default"]
        assert "router bgp 2" in router_config(
            testbed.network.router("PE1")
        )
        assert "router bgp" not in router_config(
            testbed.network.router("P2")
        )

    def test_bgp_peering_addresses(self, scenarios):
        testbed = scenarios["default"]
        pe1 = testbed.network.router("PE1")
        ce1 = testbed.network.router("CE1")
        config = router_config(pe1)
        peer_address = ce1.incoming_address_from(pe1)
        assert (
            f"neighbor {format_address(peer_address)} remote-as 1"
            in config
        )

    def test_network_configs_cover_everything(self, scenarios):
        testbed = scenarios["default"]
        configs = network_configs(testbed.network)
        assert set(configs) == set(testbed.network.routers)
        for text in configs.values():
            assert text.endswith("end")
