"""RSVP-TE as a first-class tunnel class in synth and the data plane.

The contract under test (ISSUE: RSVP-TE promotion): the synth
generator renders seeded TE tunnels that real transit traffic rides;
TE-free builds stay byte-identical to older seeds; recorded probe
logs are byte-identical scalar-vs-batch with TE tunnels installed;
compiled programs flush on TE install *and* teardown (chaos flap
included); and a mixed LDP+TE campaign checkpoints and resumes
bit-identically.
"""

import pytest

from repro.experiments.common import CampaignContext, ContextConfig
from repro.measure import RecordingBackend, SimBackend
from repro.obs import measurement_counters
from repro.probing.prober import Prober
from repro.store import RESUME_EXEMPT_COUNTERS
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles

BASE = dict(
    scale=0.4,
    seed=11,
    vantage_points=3,
    stubs_per_transit=2,
)


def te_internet(seed=11, te=2, compiled=False, window=1,
                propagate=False):
    return build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.4)),
            vantage_points=3,
            stubs_per_transit=2,
            seed=seed,
            compiled_plane=compiled,
            probe_batch_window=window,
            te_tunnels_per_transit=te,
            te_ttl_propagate=propagate,
        )
    )


class TestSynthTe:
    def test_tunnels_installed_per_transit(self):
        internet = te_internet()
        assert internet.te_tunnels
        assert len(internet.control.te) == len(internet.te_tunnels)
        per_as = {}
        for tunnel in internet.te_tunnels:
            head = internet.network.routers[tunnel.head]
            tail = internet.network.routers[tunnel.tail]
            assert head.asn == tail.asn
            assert len(tunnel.path) >= 3
            per_as[head.asn] = per_as.get(head.asn, 0) + 1
        assert all(count <= 2 for count in per_as.values())

    def test_default_build_has_no_tunnels(self):
        assert te_internet(te=0).te_tunnels == []

    def test_te_knob_does_not_perturb_topology(self):
        """TE consumes RNG only after everything else is built."""
        plain = te_internet(te=0)
        with_te = te_internet(te=2)
        assert sorted(plain.network.routers) == sorted(
            with_te.network.routers
        )
        assert [vp.name for vp in plain.vps] == [
            vp.name for vp in with_te.vps
        ]
        assert plain.campaign_targets() == with_te.campaign_targets()

    def test_transit_traffic_rides_a_tunnel(self):
        internet = te_internet()
        te_paths = {
            tunnel.path: tunnel for tunnel in internet.te_tunnels
        }
        ridden = 0
        for vp in internet.vps:
            for dst in internet.campaign_targets():
                path = tuple(internet.true_forward_path(vp, dst))
                for te_path in te_paths:
                    for start in range(len(path) - len(te_path) + 1):
                        if path[start:start + len(te_path)] == te_path:
                            ridden += 1
        assert ridden > 0


def _record_log(tmp_path, name, compiled, window):
    internet = te_internet(compiled=compiled, window=window)
    path = str(tmp_path / name)
    recording = RecordingBackend(SimBackend(internet.engine), path)
    prober = Prober(
        recording, obs=internet.engine.obs, batch_window=window
    )
    vp = internet.vps[0]
    for dst in internet.campaign_targets()[:6]:
        prober.traceroute(vp, dst)
        prober.ping(vp, dst)
    recording.close()
    with open(path, "rb") as handle:
        return handle.read()


class TestCompiledIdentityWithTe:
    @pytest.mark.parametrize("window", [1, 8])
    def test_logs_byte_identical(self, tmp_path, window):
        scalar = _record_log(
            tmp_path, "scalar.jsonl", compiled=False, window=window
        )
        compiled = _record_log(
            tmp_path, "compiled.jsonl", compiled=True, window=window
        )
        assert scalar == compiled

    def test_install_and_teardown_flush_programs(self):
        internet = te_internet(te=0, compiled=True, window=8)

        def all_paths():
            return [
                tuple(internet.true_forward_path(vp, dst))
                for vp in internet.vps
                for dst in internet.campaign_targets()
            ]

        before = all_paths()
        metrics = internet.engine.obs.metrics
        assert internet.engine.compiled_plane.stats()["programs"] > 0
        flushes = metrics.get("dataplane.compiled.invalidations")

        # Steal the seeded tunnels from a TE-enabled twin and install
        # them mid-flight: the memoised programs must flush...
        twin = te_internet(te=2)
        for tunnel in twin.te_tunnels:
            internet.control.install_te_tunnel(tunnel)
        assert (
            metrics.get("dataplane.compiled.invalidations") > flushes
        )
        # ...after which the patched internet forwards exactly like a
        # twin that was *born* with the tunnels (TE install is the last
        # build step, so the underlying topologies are identical).
        during = all_paths()
        te_native = [
            tuple(twin.true_forward_path(vp, dst))
            for vp in twin.vps
            for dst in twin.campaign_targets()
        ]
        assert during == te_native
        assert during != before
        # ...and teardown must flush again and restore the IGP paths.
        flushes = metrics.get("dataplane.compiled.invalidations")
        for tunnel in twin.te_tunnels:
            internet.control.remove_te_tunnel(tunnel.head, tunnel.tail)
        assert (
            metrics.get("dataplane.compiled.invalidations") > flushes
        )
        assert all_paths() == before

    def test_teardown_of_unknown_tunnel_raises(self):
        internet = te_internet(te=0)
        with pytest.raises(KeyError):
            internet.control.remove_te_tunnel("nope", "nowhere")


def _context(**overrides):
    config = dict(BASE, te_tunnels_per_transit=2)
    config.update(overrides)
    return CampaignContext(ContextConfig(**config))


def _counters(context):
    counters = dict(
        measurement_counters(
            context.campaign.obs.metrics.counters_snapshot()
        )
    )
    for name in RESUME_EXEMPT_COUNTERS:
        counters.pop(name, None)
    return counters


def _assert_results_equal(left, right):
    for name in (
        "traces", "pings", "pairs", "revelations",
        "probes_sent", "revelation_probes",
    ):
        assert getattr(left, name) == getattr(right, name), name
    assert left.data_quality == right.data_quality


class TestMixedCampaigns:
    def test_compiled_equals_scalar_with_te(self):
        # Same batch window on both sides: windowed probing keeps
        # extra probes in flight behind a stop (they spend budget), so
        # only the compiled plane may differ between the two runs.
        scalar = _context(batch_window=8)
        compiled = _context(compiled_plane=True, batch_window=8)
        _assert_results_equal(compiled.result, scalar.result)

    def test_chaos_flap_campaign_completes_with_te(self):
        context = _context(
            fault_profile="flap", compiled_plane=True, batch_window=8,
            max_retries=1,
        )
        result = context.result
        assert not result.partial
        assert result.traces
        assert result.data_quality["grade"] in (
            "high", "degraded", "poor",
        )

    def test_checkpoint_resume_bit_identical(self, tmp_path):
        baseline = _context()
        warehouse = str(tmp_path / "warehouse")
        interrupted = _context(
            probe_budget=150, checkpoint_dir=warehouse
        )
        assert interrupted.result.partial
        resumed = _context(checkpoint_dir=warehouse, resume=True)
        assert not resumed.result.partial
        _assert_results_equal(resumed.result, baseline.result)
        assert _counters(resumed) == _counters(baseline)

    def test_te_keys_the_snapshot(self, tmp_path):
        """An LDP-only resume must not land in a TE snapshot."""
        from repro.store import StoreMismatch

        warehouse = str(tmp_path / "warehouse")
        _context(checkpoint_dir=warehouse)
        with pytest.raises(StoreMismatch):
            _context(
                te_tunnels_per_transit=0,
                checkpoint_dir=warehouse,
                resume=True,
            )
