"""Unit tests for the analytical techniques: fingerprinting, FRPLA, RTLA."""

from hypothesis import given, strategies as st

from repro.core.frpla import FrplaAnalyzer, RfaSample, rfa_of_hop
from repro.core.rtla import RtlaAnalyzer, rtla_gap
from repro.core.signatures import (
    Signature,
    SignatureInventory,
    infer_initial_ttl,
    return_path_length,
)
from repro.probing.prober import PingResult, Trace, TraceHop


class TestInitialTtlInference:
    def test_buckets(self):
        assert infer_initial_ttl(64) == 64
        assert infer_initial_ttl(65) == 128
        assert infer_initial_ttl(128) == 128
        assert infer_initial_ttl(129) == 255
        assert infer_initial_ttl(255) == 255
        assert infer_initial_ttl(1) == 64

    def test_invalid(self):
        assert infer_initial_ttl(None) is None
        assert infer_initial_ttl(0) is None
        assert infer_initial_ttl(300) is None

    @given(st.integers(1, 255))
    def test_initial_not_below_observation(self, observed):
        initial = infer_initial_ttl(observed)
        assert initial >= observed

    @given(st.integers(1, 255))
    def test_return_length_non_negative(self, observed):
        assert return_path_length(observed) >= 1


class TestSignature:
    def test_brands(self):
        assert Signature(255, 255).brand == "cisco"
        assert Signature(255, 64).brand == "juniper"
        assert Signature(128, 128).brand == "junos-e"
        assert Signature(64, 64).brand == "brocade"
        assert Signature(64, 255).brand is None

    def test_partial_signature(self):
        partial = Signature(255, None)
        assert not partial.complete
        assert partial.pair is None
        assert partial.brand is None
        assert str(partial) == "<255, ?>"

    def test_rtla_capable_only_juniper(self):
        assert Signature(255, 64).rtla_capable
        assert not Signature(255, 255).rtla_capable
        assert not Signature(None, 64).rtla_capable


class TestSignatureInventory:
    def test_inference_uses_best_observation(self):
        inventory = SignatureInventory()
        inventory.observe_time_exceeded(1, 240)
        inventory.observe_time_exceeded(1, 250)  # shorter return path
        inventory.observe_echo_reply(1, 60)
        signature = inventory.signature(1)
        assert signature.pair == (255, 64)

    def test_brand_shares(self):
        inventory = SignatureInventory()
        inventory.observe_time_exceeded(1, 250)
        inventory.observe_echo_reply(1, 250)
        inventory.observe_time_exceeded(2, 250)
        inventory.observe_echo_reply(2, 60)
        shares = inventory.brand_shares()
        assert shares == {"cisco": 0.5, "juniper": 0.5}

    def test_brand_shares_unknown_bucket(self):
        inventory = SignatureInventory()
        inventory.observe_time_exceeded(1, 250)  # no echo observation
        assert inventory.brand_shares() == {"unknown": 1.0}

    def test_brand_shares_restricted_population(self):
        inventory = SignatureInventory()
        inventory.observe_time_exceeded(1, 250)
        inventory.observe_echo_reply(1, 250)
        inventory.observe_time_exceeded(2, 250)
        inventory.observe_echo_reply(2, 60)
        assert inventory.brand_shares([1]) == {"cisco": 1.0}
        assert inventory.brand_shares([]) == {}


def make_hop(ttl, address, reply_ttl, kind="time-exceeded"):
    return TraceHop(
        probe_ttl=ttl,
        address=address,
        reply_kind=kind,
        reply_ttl=reply_ttl,
    )


class TestFrpla:
    def test_rfa_of_hop(self):
        sample = rfa_of_hop(make_hop(5, 42, 251))
        assert sample.forward_length == 5
        assert sample.return_length == 5
        assert sample.rfa == 0

    def test_rfa_positive_shift(self):
        sample = rfa_of_hop(make_hop(3, 42, 250))
        assert sample.rfa == 3

    def test_rfa_skips_echo_replies(self):
        assert rfa_of_hop(make_hop(3, 42, 250, kind="echo-reply")) is None

    def test_rfa_skips_silent_hops(self):
        hop = TraceHop(probe_ttl=3, address=None)
        assert rfa_of_hop(hop) is None

    def _analyzer(self):
        return FrplaAnalyzer(
            asn_of=lambda address: 100 if address < 100 else 200,
            classify=lambda address: "egress" if address % 2 else "other",
        )

    def test_grouping_by_as_and_role(self):
        analyzer = self._analyzer()
        analyzer.add_sample(RfaSample(1, 3, 6, 3))  # AS100 egress
        analyzer.add_sample(RfaSample(2, 3, 3, 0))  # AS100 other
        analyzer.add_sample(RfaSample(101, 3, 7, 4))  # AS200 egress
        assert analyzer.asns() == [100, 200]
        assert analyzer.shift(100, role="egress") == 3
        assert analyzer.shift(100, role="other") == 0
        assert analyzer.shift(200) == 4

    def test_shift_none_without_samples(self):
        assert self._analyzer().shift(999) is None

    def test_suspicious_asns(self):
        analyzer = self._analyzer()
        for rfa in (3, 3, 4):
            analyzer.add_sample(RfaSample(1, 3, 3 + rfa, rfa))
        analyzer.add_sample(RfaSample(102, 5, 5, 0))
        assert analyzer.suspicious_asns(threshold=2) == [100]

    def test_add_trace(self):
        analyzer = self._analyzer()
        trace = Trace(source="vp", source_address=0, dst=99, flow_id=1)
        trace.hops.append(make_hop(2, 1, 253))
        trace.hops.append(make_hop(3, 2, 250))
        analyzer.add_trace(trace)
        assert len(analyzer.distribution(100)) == 2


class TestRtla:
    def test_gap_formula(self):
        estimate = rtla_gap(te_reply_ttl=250, er_reply_ttl=62)
        assert estimate is not None
        # (255-250+1) - (64-62+1) = 6 - 3 = 3
        assert estimate.tunnel_length == 3

    def test_gap_requires_juniper_pair(self):
        assert rtla_gap(250, 250) is None  # both 255-class
        assert rtla_gap(60, 60) is None  # both 64-class
        assert rtla_gap(None, 62) is None

    def _feed(self, analyzer, vp, address, te, er):
        trace = Trace(source=vp, source_address=0, dst=99, flow_id=1)
        trace.hops.append(make_hop(3, address, te))
        analyzer.add_trace(trace)
        analyzer.add_ping(
            PingResult(
                dst=address, responded=True, reply_kind="echo-reply",
                reply_ttl=er, source=vp,
            )
        )

    def test_estimate_per_vp_pairing(self):
        analyzer = RtlaAnalyzer()
        self._feed(analyzer, "vp1", 7, te=250, er=62)
        estimate = analyzer.estimate(7)
        assert estimate.tunnel_length == 3

    def test_cross_vp_observations_not_mixed(self):
        analyzer = RtlaAnalyzer()
        # vp1 only saw the TE; vp2 only pinged: no shared VP, no pair.
        trace = Trace(source="vp1", source_address=0, dst=99, flow_id=1)
        trace.hops.append(make_hop(3, 7, 250))
        analyzer.add_trace(trace)
        analyzer.add_ping(
            PingResult(
                dst=7, responded=True, reply_kind="echo-reply",
                reply_ttl=62, source="vp2",
            )
        )
        assert analyzer.estimate(7) is None
        assert analyzer.addresses() == []

    def test_cisco_signature_rejected(self):
        analyzer = RtlaAnalyzer()
        self._feed(analyzer, "vp1", 7, te=250, er=250)
        assert analyzer.estimate(7) is None

    def test_best_vp_wins(self):
        analyzer = RtlaAnalyzer()
        self._feed(analyzer, "far", 7, te=240, er=52)
        self._feed(analyzer, "near", 7, te=252, er=62)
        estimate = analyzer.estimate(7)
        # near: (255-252+1) - (64-62+1) = 4 - 3 = 1
        assert estimate.te_return_length == 4
        assert estimate.tunnel_length == 1

    def test_distribution(self):
        analyzer = RtlaAnalyzer()
        self._feed(analyzer, "vp1", 7, te=250, er=62)
        self._feed(analyzer, "vp1", 9, te=251, er=62)
        dist = analyzer.tunnel_length_distribution()
        assert len(dist) == 2

    def test_median_per_as(self):
        analyzer = RtlaAnalyzer()
        self._feed(analyzer, "vp1", 7, te=250, er=62)
        self._feed(analyzer, "vp1", 107, te=253, er=63)
        asn_of = lambda address: 100 if address < 100 else 200
        assert analyzer.median_tunnel_length(asn_of=asn_of, asn=100) == 3
        assert analyzer.median_tunnel_length(asn_of=asn_of, asn=200) == 1
        assert analyzer.median_tunnel_length(asn_of=asn_of, asn=300) is None
