"""Unit tests for BGP-like AS routing and the unified control plane."""

import pytest

from repro.mpls.config import MplsConfig
from repro.net.addressing import Prefix
from repro.net.topology import Network
from repro.net.vendors import CISCO, JUNIPER, LdpPolicy
from repro.routing.bgp import BgpRouting
from repro.routing.control import (
    ControlPlane,
    RouteKind,
    flow_choice,
)


def build_line_of_ases():
    """AS1 -- AS2 -- AS3, one router each."""
    network = Network()
    r1 = network.add_router("R1", asn=1)
    r2 = network.add_router("R2", asn=2)
    r3 = network.add_router("R3", asn=3)
    network.add_link(r1, r2)
    network.add_link(r2, r3)
    return network, (r1, r2, r3)


class TestBgpRouting:
    def test_as_path_on_line(self):
        network, _ = build_line_of_ases()
        bgp = BgpRouting(network)
        assert bgp.as_path(1, 3) == [1, 2, 3]
        assert bgp.next_as(1, 3) == 2
        assert bgp.next_as(2, 3) == 3

    def test_unreachable_as(self):
        network, _ = build_line_of_ases()
        network.add_router("Lonely", asn=9)
        bgp = BgpRouting(network)
        assert bgp.next_as(1, 9) is None
        assert bgp.as_path(1, 9) is None

    def test_same_as_rejected(self):
        network, _ = build_line_of_ases()
        bgp = BgpRouting(network)
        with pytest.raises(ValueError):
            bgp.next_as(1, 1)
        assert bgp.as_path(1, 1) == [1]

    def test_shortest_path_ties_break_low_asn(self):
        # AS1 reaches AS4 via AS2 or AS3 (equal length): AS2 wins.
        network = Network()
        r1 = network.add_router("R1", asn=1)
        r2 = network.add_router("R2", asn=2)
        r3 = network.add_router("R3", asn=3)
        r4 = network.add_router("R4", asn=4)
        network.add_link(r1, r2)
        network.add_link(r1, r3)
        network.add_link(r2, r4)
        network.add_link(r3, r4)
        bgp = BgpRouting(network)
        assert bgp.next_as(1, 4) == 2

    def test_preference_override(self):
        network = Network()
        r1 = network.add_router("R1", asn=1)
        r2 = network.add_router("R2", asn=2)
        r3 = network.add_router("R3", asn=3)
        r4 = network.add_router("R4", asn=4)
        network.add_link(r1, r2)
        network.add_link(r1, r3)
        network.add_link(r2, r4)
        network.add_link(r3, r4)
        bgp = BgpRouting(network)
        bgp.set_preference(1, 4, 3)
        assert bgp.next_as(1, 4) == 3

    def test_preference_requires_neighbor(self):
        network, _ = build_line_of_ases()
        bgp = BgpRouting(network)
        with pytest.raises(ValueError):
            bgp.set_preference(1, 3, 3)  # AS3 is not AS1's neighbor

    def test_neighbors(self):
        network, _ = build_line_of_ases()
        bgp = BgpRouting(network)
        assert bgp.neighbors(2) == {1, 3}


class TestFlowChoice:
    def test_single_candidate(self):
        network, (r1, _, _) = build_line_of_ases()
        assert flow_choice([r1], "x", 5) is r1

    def test_deterministic(self):
        network, (r1, r2, r3) = build_line_of_ases()
        picks = {flow_choice([r1, r2, r3], "key", 7) for _ in range(10)}
        assert len(picks) == 1

    def test_varies_with_flow(self):
        network, (r1, r2, r3) = build_line_of_ases()
        picks = {
            flow_choice([r1, r2, r3], "key", flow).name
            for flow in range(50)
        }
        assert len(picks) > 1  # different flows spread over candidates

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            flow_choice([], "key", 1)


class TestControlPlaneResolution:
    def test_local_route(self):
        network, (r1, r2, r3) = build_line_of_ases()
        control = ControlPlane(network)
        assert control.resolve(r1, r1.loopback).kind is RouteKind.LOCAL

    def test_attached_route(self):
        network, (r1, r2, r3) = build_line_of_ases()
        control = ControlPlane(network)
        neighbor_address = r2.incoming_address_from(r1)
        route = control.resolve(r1, neighbor_address)
        assert route.kind is RouteKind.ATTACHED

    def test_internal_route(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=1)
        network.add_link(a, b)
        network.add_link(b, c)
        control = ControlPlane(network)
        route = control.resolve(a, c.loopback)
        assert route.kind is RouteKind.INTERNAL
        assert route.next_hops == (b,)
        assert route.egress is c

    def test_external_route_and_hot_potato(self):
        network, (r1, r2, r3) = build_line_of_ases()
        control = ControlPlane(network)
        route = control.resolve(r1, r3.loopback)
        assert route.kind is RouteKind.EXTERNAL
        assert route.next_hops == (r2,)

    def test_unreachable(self):
        network, (r1, _, _) = build_line_of_ases()
        lonely = network.add_router("Lonely", asn=9)
        control = ControlPlane(network)
        assert (
            control.resolve(r1, lonely.loopback).kind
            is RouteKind.UNREACHABLE
        )
        assert control.resolve(r1, 0x01020304).kind is RouteKind.UNREACHABLE

    def test_route_cache_consistency(self):
        network, (r1, r2, r3) = build_line_of_ases()
        control = ControlPlane(network)
        first = control.resolve(r1, r3.loopback)
        second = control.resolve(r1, r3.loopback)
        assert first is second  # memoised


class TestLdpPolicy:
    def _mpls_as(self, vendor_core, ldp_override=None):
        network = Network()
        config = MplsConfig.from_vendor(CISCO)
        if ldp_override is not None:
            config = config.with_overrides(ldp_policy=ldp_override)
        a = network.add_router("A", asn=1, vendor=CISCO, mpls=config)
        core_config = MplsConfig.from_vendor(vendor_core)
        if ldp_override is not None:
            core_config = core_config.with_overrides(
                ldp_policy=ldp_override
            )
        b = network.add_router("B", asn=1, vendor=vendor_core, mpls=core_config)
        link = network.add_link(a, b)
        return network, a, b, link

    def test_all_cisco_is_all_prefixes(self):
        network, a, b, link = self._mpls_as(CISCO)
        control = ControlPlane(network)
        assert control.as_labels_all_prefixes(1)
        assert control.ldp_labels_prefix(1, link.prefix)

    def test_one_juniper_filters_non_loopbacks(self):
        network, a, b, link = self._mpls_as(JUNIPER)
        control = ControlPlane(network)
        assert not control.as_labels_all_prefixes(1)
        assert not control.ldp_labels_prefix(1, link.prefix)
        # Loopbacks stay labelled under both policies.
        assert control.ldp_labels_prefix(1, Prefix(a.loopback, 32))

    def test_operator_override_beats_vendor_default(self):
        network, a, b, link = self._mpls_as(
            JUNIPER, ldp_override=LdpPolicy.ALL_PREFIXES
        )
        control = ControlPlane(network)
        assert control.as_labels_all_prefixes(1)

    def test_no_mpls_as_labels_nothing(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        link = network.add_link(a, b)
        control = ControlPlane(network)
        assert not control.as_labels_all_prefixes(1)
        assert not control.ldp_labels_prefix(1, link.prefix)

    def test_foreign_prefix_never_labelled(self):
        network, a, b, link = self._mpls_as(CISCO)
        foreign = network.add_router("X", asn=2)
        control = ControlPlane(network)
        assert not control.ldp_labels_prefix(
            1, Prefix(foreign.loopback, 32)
        )


class TestFecEgress:
    def test_loopback_fec_egress_is_owner(self):
        network, (r1, r2, r3) = build_line_of_ases()
        control = ControlPlane(network)
        fec = Prefix(r2.loopback, 32)
        assert control.is_fec_egress(r2, fec)
        assert not control.is_fec_egress(r1, fec)

    def test_link_fec_egress_is_any_attached(self):
        network, (r1, r2, r3) = build_line_of_ases()
        control = ControlPlane(network)
        link_prefix = r1.interface_toward(r2).prefix
        assert control.is_fec_egress(r1, link_prefix)
        assert control.is_fec_egress(r2, link_prefix)
        assert not control.is_fec_egress(r3, link_prefix)
