"""Fairness tests for the serve scheduler (ISSUE satellite).

The contract: while two tenants are both backlogged, the weighted
fair scheduler's grant ratio tracks their weight ratio; a tenant that
exhausts its probe budget yields a clean partial result without
starving (or being starved by) its competitors — and both properties
hold under the ``hostile`` chaos profile.
"""

import pytest

from repro.serve import ServeClient, SnapshotRegistry, TenantSpec, TopologySpec

SMALL = TopologySpec(
    scale=0.3, seed=11, vantage_points=3, stubs_per_transit=2
)


def spec(tenant, **overrides):
    overrides.setdefault("topology", SMALL)
    return TenantSpec(tenant=tenant, **overrides)


class TestWeightedFairness:
    @pytest.mark.parametrize("profile", [None, "hostile"])
    def test_10_to_1_weights_give_10_to_1_grants(self, profile):
        """The acceptance bar: 10:1 budget weights → dispatch counts
        within tolerance of 10:1, clean and under ``hostile``."""
        kwargs = {}
        if profile is not None:
            kwargs = {"fault_profile": profile, "max_retries": 1}
        client = ServeClient(
            registry=SnapshotRegistry(), max_active=2
        )
        try:
            heavy = client.submit(
                spec("heavy", weight=10.0, **kwargs)
            )
            light = client.submit(spec("light", weight=1.0, **kwargs))
            heavy.wait(timeout=600)
            light.wait(timeout=600)
        finally:
            client.close()
        # The snapshot taken the moment the heavy tenant finished is
        # the contended-window measurement: both lanes were backlogged
        # the whole time, so grants must track weights.
        lanes = heavy.session.grant_snapshot
        heavy_probes = lanes["heavy"]["granted_probes"]
        light_probes = max(1, lanes["light"]["granted_probes"])
        ratio = heavy_probes / light_probes
        assert 6.0 <= ratio <= 15.0, lanes
        # And nobody starved: the light tenant still finished with a
        # full (non-partial) result.
        assert light.session.result is not None
        assert not light.session.result.partial

    def test_equal_weights_share_evenly(self):
        client = ServeClient(
            registry=SnapshotRegistry(), max_active=2
        )
        try:
            a = client.submit(spec("a", weight=1.0))
            b = client.submit(spec("b", weight=1.0))
            a.wait(timeout=600)
            b.wait(timeout=600)
        finally:
            client.close()
        lanes = a.session.grant_snapshot
        ratio = lanes["a"]["granted_probes"] / max(
            1, lanes["b"]["granted_probes"]
        )
        assert 0.7 <= ratio <= 1.4, lanes


class TestBudgetedTenant:
    def test_budget_exhaustion_is_clean_and_contained(self):
        """A budget-killed tenant ends partial with a stop reason;
        its competitor is untouched and completes in full."""
        client = ServeClient(
            registry=SnapshotRegistry(), max_active=2
        )
        try:
            broke = client.submit(
                spec("broke", probe_budget=25, weight=1.0)
            )
            solvent = client.submit(spec("solvent", weight=1.0))
            partial = broke.wait(timeout=600)
            full = solvent.wait(timeout=600)
            stats = client.stats()
            server_metrics = client.server.obs.metrics
        finally:
            client.close()
        assert partial.partial
        assert partial.probes_sent <= 25
        assert "budget" in (partial.stop_reason or "")
        assert not full.partial
        assert len(full.traces) > len(partial.traces)
        assert stats["sessions"] == {"done": 2}
        assert server_metrics.get("serve.sessions.partial") == 1
        assert server_metrics.get("serve.budget_denials") >= 1
