"""Record → replay determinism for the measurement plane."""

import json

import pytest

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.measure import (
    ProbeRequest,
    RecordingBackend,
    ReplayBackend,
    ReplayMiss,
    SimBackend,
)
from repro.measure.replay import SCHEMA
from repro.obs import Obs, measurement_counters
from repro.probing.prober import Prober
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


_CONFIG = InternetConfig(
    profiles=tuple(paper_profiles(0.4)),
    vantage_points=3,
    stubs_per_transit=2,
    seed=11,
)


def _campaign(prober, internet, **overrides):
    return Campaign(
        prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(
            suspicious_asns=tuple(internet.transit_asns), **overrides
        ),
    )


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded golden-topology campaign: (path, result, counters)."""
    path = str(tmp_path_factory.mktemp("probelog") / "campaign.jsonl")
    internet = build_internet(_CONFIG)
    recording = RecordingBackend(SimBackend(internet.engine), path)
    campaign = _campaign(Prober(recording), internet)
    result = campaign.run(internet.campaign_targets())
    recording.close()
    counters = measurement_counters(
        campaign.obs.metrics.counters_snapshot()
    )
    return path, result, counters


class TestRecording:
    def test_log_has_schema_header(self, recorded):
        path, _, _ = recorded
        with open(path, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == SCHEMA
        assert header["backend"] == "sim"

    def test_log_entries_are_deduplicated(self, recorded):
        path, _, _ = recorded
        keys = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                if "schema" in record:
                    continue
                keys.append((
                    record["source"], record["dst"], record["ttl"],
                    record["flow"], record["kind"],
                ))
        assert keys
        assert len(keys) == len(set(keys))


class TestReplayDeterminism:
    def test_replay_reproduces_campaign_result(self, recorded):
        path, golden, _ = recorded
        internet = build_internet(_CONFIG)  # fresh topology metadata
        prober = Prober(ReplayBackend(path), obs=Obs())
        campaign = _campaign(prober, internet)
        replayed = campaign.run(internet.campaign_targets())
        assert replayed.traces == golden.traces
        assert replayed.pings == golden.pings
        assert [
            (p.vp, p.ingress, p.egress, p.asn) for p in replayed.pairs
        ] == [
            (p.vp, p.ingress, p.egress, p.asn) for p in golden.pairs
        ]
        assert replayed.revelations == golden.revelations
        assert replayed.probes_sent == golden.probes_sent
        assert replayed.revelation_probes == golden.revelation_probes
        assert replayed.partial == golden.partial

    def test_replay_reproduces_measurement_counters(self, recorded):
        path, _, golden_counters = recorded
        internet = build_internet(_CONFIG)
        prober = Prober(ReplayBackend(path), obs=Obs())
        campaign = _campaign(prober, internet)
        campaign.run(internet.campaign_targets())
        counters = measurement_counters(
            campaign.obs.metrics.counters_snapshot()
        )
        # The replay registry is fresh, so the measurement namespaces
        # must match the recorded run exactly — minus the engine-side
        # alias markers the simulator records (replay has no engine).
        golden = {
            name: value
            for name, value in golden_counters.items()
            if not name.startswith(("engine.", "span."))
        }
        counters = {
            name: value
            for name, value in counters.items()
            if not name.startswith(("engine.", "span."))
        }
        assert counters == golden

    def test_replay_miss_raises(self, recorded):
        path, _, _ = recorded
        backend = ReplayBackend(path)
        with pytest.raises(ReplayMiss):
            backend.submit(
                ProbeRequest("nonexistent-vp", 1, 1, 1)
            )

    def test_replay_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro.probelog/99"}\n')
        with pytest.raises(ValueError):
            ReplayBackend(str(path))


class TestBudgetedPartialRun:
    def test_partial_result_is_clean_and_reported(self):
        internet = build_internet(_CONFIG)
        campaign = _campaign(
            Prober(SimBackend(internet.engine)), internet,
            probe_budget=60,
        )
        result = campaign.run(internet.campaign_targets())
        assert result.partial
        assert result.probes_sent <= 60
        assert result.stop_reason
        # The partial result still renders a full report.
        from repro.campaign.postprocess import Aggregator
        from repro.campaign.report import render_report

        aggregator = Aggregator(result, internet.asn_of_address)
        text = render_report(result, aggregator)
        assert "Partial run" in text
        assert "probe budget exhausted" in text
