"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.obs import (
    EXECUTION_PREFIXES,
    Histogram,
    MetricsRegistry,
    measurement_counters,
)
from repro.obs.export import metrics_json, to_prometheus, write_metrics


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("probe.sent")
        registry.inc("probe.sent", 4)
        assert registry.get("probe.sent") == 5
        assert registry.get("missing") == 0

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("a")
        snapshot = registry.counters_snapshot()
        registry.inc("a")
        assert snapshot == {"a": 1}
        assert registry.get("a") == 2

    def test_deltas_omit_zero_and_include_new(self):
        registry = MetricsRegistry()
        registry.inc("stable", 3)
        registry.inc("growing", 1)
        base = registry.counters_snapshot()
        registry.inc("growing", 2)
        registry.inc("fresh", 7)
        assert registry.counter_deltas(base) == {
            "growing": 2, "fresh": 7,
        }

    def test_merge_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.inc("engine.hops_walked", 10)
        registry.merge_counters(
            {"engine.hops_walked": 5, "probe.sent": 2},
            prefix="prewarm.",
        )
        assert registry.get("engine.hops_walked") == 10
        assert registry.get("prewarm.engine.hops_walked") == 5
        assert registry.get("prewarm.probe.sent") == 2


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("phase.trace.seconds", 1.5)
        registry.set_gauge("phase.trace.seconds", 0.25)
        assert registry.gauge("phase.trace.seconds") == 0.25
        assert registry.gauge("missing", -1.0) == -1.0


class TestHistogram:
    def test_bucket_placement_inclusive_upper_bound(self):
        histogram = Histogram((1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 5.0, 9.0):
            histogram.observe(value)
        # <=1, <=5, +Inf
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(18.5)
        assert histogram.mean == pytest.approx(3.7)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_merge_same_bounds(self):
        left = Histogram((1.0, 2.0))
        right = Histogram((1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        right.observe(99.0)
        left.merge(right)
        assert left.counts == [1, 1, 1]
        assert left.count == 3

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_registry_observe_reuses_histogram(self):
        registry = MetricsRegistry()
        registry.observe("trace.hops", 3, buckets=(2.0, 4.0))
        registry.observe("trace.hops", 10)
        histogram = registry.histograms["trace.hops"]
        assert histogram.bounds == (2.0, 4.0)
        assert histogram.count == 2


class TestRegistryMerge:
    def test_merge_adds_counters_and_histograms(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        parent.inc("probe.sent", 1)
        child.inc("probe.sent", 2)
        child.set_gauge("rtla.estimates", 4)
        child.observe("trace.hops", 6, buckets=(4.0, 8.0))
        parent.merge(child)
        assert parent.get("probe.sent") == 3
        assert parent.gauge("rtla.estimates") == 4
        assert parent.histograms["trace.hops"].count == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 1.0)
        registry.observe("c", 1.0)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestMeasurementCounters:
    def test_execution_namespaces_filtered_out(self):
        counters = {
            "probe.sent.traceroute": 10,
            "revelation.traces": 3,
            "engine.trajectory_hits": 7,
            "phase.trace.trajectory_hits": 7,
            "prewarm.probe.sent.traceroute": 5,
            "span.count": 1,
        }
        kept = measurement_counters(counters)
        assert kept == {
            "probe.sent.traceroute": 10,
            "revelation.traces": 3,
        }
        for prefix in EXECUTION_PREFIXES:
            assert not any(name.startswith(prefix) for name in kept)


class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("probe.sent.traceroute", 12)
        registry.set_gauge("phase.trace.seconds", 1.5)
        registry.observe("trace.hops", 3, buckets=(2.0, 4.0))
        registry.observe("trace.hops", 9)
        return registry

    def test_prometheus_counter_and_sanitised_names(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_probe_sent_traceroute counter" in text
        assert "repro_probe_sent_traceroute 12" in text
        assert "# TYPE repro_phase_trace_seconds gauge" in text

    def test_prometheus_histogram_is_cumulative(self):
        lines = to_prometheus(self._registry()).splitlines()
        buckets = [
            line for line in lines if "trace_hops_bucket" in line
        ]
        assert buckets == [
            'repro_trace_hops_bucket{le="2"} 0',
            'repro_trace_hops_bucket{le="4"} 1',
            'repro_trace_hops_bucket{le="+Inf"} 2',
        ]
        assert "repro_trace_hops_count 2" in lines
        assert "repro_trace_hops_sum 12" in lines

    def test_metrics_json_round_trips(self):
        data = json.loads(metrics_json(self._registry()))
        assert data["counters"]["probe.sent.traceroute"] == 12
        assert data["histograms"]["trace.hops"]["count"] == 2

    def test_write_metrics_format_follows_suffix(self, tmp_path):
        registry = self._registry()
        prom = write_metrics(registry, tmp_path / "metrics.prom")
        js = write_metrics(registry, tmp_path / "metrics.json")
        assert prom.read_text().startswith("# TYPE repro_")
        assert json.loads(js.read_text())["counters"]
