"""Tests for the multi-tenant campaign server (``repro.serve``).

Covers the subsystem's load-bearing promises: served runs are
byte-identical to the standalone orchestrator (measurement counters
included), snapshots render once per content key no matter how many
tenants attach, frozen shared topologies reject every mutation path,
admission turns unsafe specs away up front, and drain settles every
submitted session.
"""

import pytest

from repro.net.topology import FrozenNetworkError
from repro.obs import measurement_counters
from repro.serve import (
    AdmissionError,
    ServeClient,
    SnapshotRegistry,
    TenantSpec,
    TopologySpec,
    run_standalone,
    topology_key,
)
from repro.serve.registry import default_registry, render_internet

#: Small-but-complete topology: every campaign phase runs and tunnels
#: are revealed, within a unit-test budget.
SMALL = TopologySpec(
    scale=0.3, seed=11, vantage_points=3, stubs_per_transit=2
)


def small_spec(tenant, **overrides):
    overrides.setdefault("topology", SMALL)
    overrides.setdefault("max_targets", 6)
    return TenantSpec(tenant=tenant, **overrides)


def fingerprint(result, counters):
    return (
        result.traces,
        result.pings,
        result.pairs,
        result.revelations,
        result.probes_sent,
        result.partial,
        measurement_counters(counters),
    )


class TestByteIdentity:
    def test_served_equals_standalone_counters_included(self):
        spec = small_spec("ident")
        client = ServeClient(registry=SnapshotRegistry())
        try:
            handle = client.submit(spec)
            served = handle.wait(timeout=300)
            served_print = fingerprint(
                served, handle.session.metrics.counters_snapshot()
            )
        finally:
            client.close()
        expected, metrics = run_standalone(spec)
        assert served_print == fingerprint(
            expected, metrics.counters_snapshot()
        )

    def test_batch_window_spec_still_identical(self):
        spec = small_spec("windowed", batch_window=4)
        client = ServeClient(registry=SnapshotRegistry())
        try:
            served = client.submit(spec).wait(timeout=300)
        finally:
            client.close()
        expected, _ = run_standalone(spec)
        assert served.traces == expected.traces
        assert served.revelations == expected.revelations


class TestSnapshotSharing:
    def test_32_tenants_4_snapshots_renders_once_per_key(self):
        topologies = [
            TopologySpec(
                scale=0.25, seed=100 + i,
                vantage_points=2, stubs_per_transit=2,
            )
            for i in range(4)
        ]
        registry = SnapshotRegistry()
        client = ServeClient(registry=registry, max_active=8)
        try:
            handles = [
                client.submit(
                    TenantSpec(
                        tenant=f"t{i:02d}",
                        topology=topologies[i % 4],
                        max_targets=2,
                    )
                )
                for i in range(32)
            ]
            for handle in handles:
                handle.wait(timeout=600)
        finally:
            client.close()
        stats = registry.stats()
        assert stats["renders"] == len(
            {topology_key(t) for t in topologies}
        )
        assert stats["attaches"] == 32
        assert stats["attach_hits"] == 32 - 4
        assert stats["builds_avoided"] == 28

    def test_attachments_are_isolated(self):
        registry = SnapshotRegistry()
        a = registry.attach(SMALL)
        b = registry.attach(SMALL)
        assert a.network is b.network  # shared topology...
        assert a.engine is not b.engine  # ...private execution
        assert a.prober is not b.prober
        assert a.engine.obs.metrics is not b.engine.obs.metrics
        a.detach()
        b.detach()

    def test_campaign_context_reuses_registry_snapshot(self):
        # Satellite: two contexts in one process differing only in an
        # execution knob must share one render via the default
        # registry (previously each paid internet_build).
        from repro.experiments.common import (
            ContextConfig,
            campaign_context,
        )

        base = dict(
            scale=0.25, seed=4242,
            vantage_points=2, stubs_per_transit=2,
        )
        before = default_registry().stats()
        campaign_context(ContextConfig(**base))
        campaign_context(ContextConfig(max_retries=1, **base))
        after = default_registry().stats()
        assert after["renders"] == before["renders"] + 1
        assert after["attaches"] == before["attaches"] + 2
        assert after["attach_hits"] == before["attach_hits"] + 1


class TestFreezeGuard:
    def test_frozen_network_rejects_structural_edits(self):
        internet = render_internet(SMALL)
        internet.network.freeze()
        assert internet.network.frozen
        with pytest.raises(FrozenNetworkError):
            internet.network.add_router("intruder", asn=9999)
        routers = list(internet.network.routers.values())
        with pytest.raises(FrozenNetworkError):
            internet.network.add_link(routers[0], routers[1])

    def test_registry_snapshots_are_frozen(self):
        registry = SnapshotRegistry()
        attached = registry.attach(SMALL)
        try:
            assert attached.network.frozen
            with pytest.raises(FrozenNetworkError):
                attached.network.add_router("intruder", asn=9999)
        finally:
            attached.detach()

    def test_flap_profile_refused_on_shared_snapshot(self):
        client = ServeClient(registry=SnapshotRegistry())
        try:
            with pytest.raises(AdmissionError):
                client.submit(small_spec("bad", fault_profile="flap"))
        finally:
            client.close()

    def test_flap_fire_against_frozen_network_raises(self):
        from repro.faults import FaultyBackend, fault_profile
        from repro.measure import SimBackend

        internet = render_internet(SMALL)
        internet.network.freeze()
        backend = FaultyBackend(
            SimBackend(internet.engine), fault_profile("flap")
        )
        with pytest.raises(RuntimeError, match="frozen"):
            backend._fire_flap(0, "route-change")


class TestAdmission:
    def test_workers_must_be_one(self):
        client = ServeClient(registry=SnapshotRegistry())
        try:
            with pytest.raises(AdmissionError, match="workers"):
                client.submit(small_spec("forker", workers=4))
        finally:
            client.close()

    def test_unknown_profile_rejected(self):
        client = ServeClient(registry=SnapshotRegistry())
        try:
            with pytest.raises(AdmissionError):
                client.submit(
                    small_spec("chaotic", fault_profile="no-such")
                )
        finally:
            client.close()

    def test_non_mutating_profile_admitted(self):
        client = ServeClient(registry=SnapshotRegistry())
        try:
            handle = client.submit(
                small_spec("hostile", fault_profile="hostile",
                           max_retries=1)
            )
            result = handle.wait(timeout=300)
            assert result.traces
        finally:
            client.close()


class TestLifecycle:
    def test_drain_cancels_queued_keeps_active(self):
        client = ServeClient(
            registry=SnapshotRegistry(), max_active=1
        )
        try:
            handles = [
                client.submit(small_spec(f"d{i}", max_targets=None))
                for i in range(3)
            ]
            client.drain(cancel_queued=True, timeout=600)
            statuses = [handle.status for handle in handles]
            assert all(
                status in ("done", "cancelled") for status in statuses
            )
            assert statuses.count("done") >= 1
            assert statuses.count("cancelled") >= 1
            stats = client.stats()
            assert stats["draining"]
            with pytest.raises(AdmissionError):
                client.submit(small_spec("late"))
        finally:
            client.close()

    def test_session_buffers_events_and_final_metrics(self):
        client = ServeClient(registry=SnapshotRegistry())
        try:
            handle = client.submit(small_spec("eventful"))
            handle.wait(timeout=300)
            kinds = [record.get("kind") for record in handle.events]
            assert "campaign.metrics" in kinds
            final = [
                record for record in handle.events
                if record.get("kind") == "campaign.metrics"
            ][-1]
            assert final["counters"].get("measure.probes", 0) > 0
        finally:
            client.close()

    def test_events_mirrored_to_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        client = ServeClient(registry=SnapshotRegistry())
        try:
            handle = client.submit(
                small_spec("writer", events_path=str(path))
            )
            handle.wait(timeout=300)
        finally:
            client.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(handle.events)

    def test_server_stats_shape(self):
        client = ServeClient(registry=SnapshotRegistry())
        try:
            client.submit(small_spec("s")).wait(timeout=300)
            stats = client.stats()
        finally:
            client.close()
        assert stats["sessions"] == {"done": 1}
        assert set(stats["registry"]) >= {
            "renders", "attach_hits", "builds_avoided", "saved_ms",
        }
        assert "s" in stats["scheduler"]


class TestTopologyKey:
    def test_key_is_stable_and_discriminating(self):
        assert topology_key(SMALL) == topology_key(
            TopologySpec(
                scale=0.3, seed=11,
                vantage_points=3, stubs_per_transit=2,
            )
        )
        assert topology_key(SMALL) != topology_key(
            TopologySpec(scale=0.3, seed=12,
                         vantage_points=3, stubs_per_transit=2)
        )

    def test_checkpoint_descriptor_matches_context_build(self):
        # Serve sessions and `repro campaign --checkpoint` must land
        # in the same warehouse snapshot for the same measured
        # topology + chaos shape.
        spec = small_spec("ckpt", fault_profile="hostile",
                          batch_window=2)
        descriptor = spec.checkpoint_topology()
        assert descriptor["kind"] == "synthetic-internet"
        assert descriptor["fault_profile"] == "hostile"
        assert descriptor["batch_window"] == 2
        clean = small_spec("clean").checkpoint_topology()
        assert "fault_profile" not in clean
        assert "batch_window" not in clean
