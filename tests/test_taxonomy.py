"""Tests for the explicit/implicit tunnel taxonomy (Sec. 2.2)."""

import pytest

from repro.core.taxonomy import TunnelClass, classify_trace
from repro.synth.failures import disable_rfc4950
from repro.synth.gns3 import build_gns3


class TestExplicitClassification:
    def test_default_testbed_yields_explicit_segment(self):
        testbed = build_gns3("default")
        trace = testbed.traceroute("CE2.left")
        segments = classify_trace(trace)
        explicit = [
            s for s in segments if s.kind == TunnelClass.EXPLICIT
        ]
        assert len(explicit) == 1
        names = [testbed.name_of(a) for a in explicit[0].lsrs]
        assert names == ["P1.left", "P2.left", "P3.left"]

    def test_invisible_testbed_yields_nothing(self):
        testbed = build_gns3("backward-recursive")
        trace = testbed.traceroute("CE2.left")
        assert classify_trace(trace) == []

    def test_uhp_testbed_yields_nothing(self):
        testbed = build_gns3("totally-invisible")
        trace = testbed.traceroute("CE2.left")
        assert classify_trace(trace) == []


class TestImplicitClassification:
    @pytest.fixture()
    def implicit_testbed(self):
        # ttl-propagate on (LSRs answer) but RFC 4950 off (no labels):
        # the 2012 paper's *implicit* tunnel.
        testbed = build_gns3("default")
        disable_rfc4950(testbed.network, fraction=1.0, asns=[2])
        return testbed

    def test_uturn_signature_found(self, implicit_testbed):
        testbed = implicit_testbed
        trace = testbed.traceroute("CE2.left")
        assert not trace.contains_labels()
        segments = classify_trace(trace)
        implicit = [
            s for s in segments if s.kind == TunnelClass.IMPLICIT
        ]
        assert len(implicit) == 1
        names = [testbed.name_of(a) for a in implicit[0].lsrs]
        # The u-turn run covers the in-tunnel hops whose replies
        # detoured: P1 and P2 (P3 is the LH and replies directly).
        assert "P1.left" in names and "P2.left" in names

    def test_min_length_suppresses_coincidences(self, implicit_testbed):
        trace = implicit_testbed.traceroute("CE2.left")
        strict = classify_trace(trace, min_implicit_length=5)
        assert all(s.kind != TunnelClass.IMPLICIT for s in strict)

    def test_plain_ip_path_never_implicit(self):
        # The explicit-route testbed's DPR trace is pure IGP: flat
        # asymmetry, no u-turn, no implicit segment.
        testbed = build_gns3("explicit-route")
        trace = testbed.traceroute("PE2.left")
        assert classify_trace(trace) == []


class TestSegmentProperties:
    def test_segments_ordered_by_ttl(self):
        testbed = build_gns3("default")
        trace = testbed.traceroute("CE2.left")
        segments = classify_trace(trace)
        ttls = [s.start_ttl for s in segments]
        assert ttls == sorted(ttls)
        for segment in segments:
            assert segment.length == len(segment.lsrs)


class TestTaxonomyProperties:
    def test_no_false_positives_on_random_plain_ip(self):
        # Seeded sweep: no MPLS => no segments, ever.
        import random as _random
        from repro.dataplane.engine import ForwardingEngine
        from repro.net.topology import Network
        from repro.probing.prober import Prober

        for seed in range(25):
            rng = _random.Random(seed)
            network = Network()
            n = rng.randint(3, 10)
            routers = [
                network.add_router(f"R{i}", asn=1) for i in range(n)
            ]
            for a, b in zip(routers, routers[1:]):
                network.add_link(a, b, weight=rng.randint(1, 4))
            if n > 3 and rng.random() < 0.5:
                a, b = rng.sample(routers, 2)
                if a.interface_toward(b) is None:
                    network.add_link(a, b, weight=rng.randint(1, 4))
            prober = Prober(ForwardingEngine(network))
            trace = prober.traceroute(
                routers[0], routers[-1].loopback
            )
            assert classify_trace(trace) == [], f"seed {seed}"

    def test_explicit_and_implicit_disjoint(self):
        # A hop can only belong to one class: labels win.
        testbed = build_gns3("default")
        trace = testbed.traceroute("CE2.left")
        segments = classify_trace(trace)
        seen = set()
        for segment in segments:
            for address in segment.lsrs:
                assert (address, segment.kind) not in seen
                seen.add((address, segment.kind))
