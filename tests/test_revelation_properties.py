"""Property-based correctness of the revelation pipeline.

For any invisible LDP tunnel of length k (and any vendor policy), the
combined DPR/BRPR recursion must reveal exactly the k hidden LSRs, in
order, with the classification Table 2 predicts — across randomized
chain lengths, vendor policies, and probing start offsets.
"""

from hypothesis import given, settings, strategies as st

from repro.core.revelation import (
    RevelationMethod,
    candidate_endpoints,
    reveal_tunnel,
)
from repro.dataplane.engine import ForwardingEngine
from repro.mpls.config import MplsConfig
from repro.net.topology import Network
from repro.net.vendors import CISCO, JUNIPER, LdpPolicy
from repro.probing.prober import Prober


def build_tunnel_chain(lsr_count, ldp_policy, pre_hops=1):
    """VP -[pre]- ingress -[k LSRs]- egress - customer."""
    network = Network()
    config = MplsConfig.from_vendor(
        CISCO, ttl_propagate=False
    ).with_overrides(ldp_policy=ldp_policy)
    vp = network.add_router("VP", asn=1)
    previous = vp
    for i in range(pre_hops - 1):
        hop = network.add_router(f"PRE{i}", asn=1)
        network.add_link(previous, hop)
        previous = hop
    ingress = network.add_router("IN", asn=2, mpls=config)
    network.add_link(previous, ingress)
    previous = ingress
    lsrs = []
    for i in range(lsr_count):
        lsr = network.add_router(f"LSR{i}", asn=2, mpls=config)
        network.add_link(previous, lsr)
        previous = lsr
        lsrs.append(lsr)
    egress = network.add_router("OUT", asn=2, mpls=config)
    network.add_link(previous, egress)
    customer = network.add_router("CUST", asn=3)
    network.add_link(customer, egress)  # customer numbers the uplink
    return network, vp, ingress, egress, customer, lsrs


@settings(max_examples=40, deadline=None)
@given(
    lsr_count=st.integers(1, 6),
    policy=st.sampled_from(
        [LdpPolicy.ALL_PREFIXES, LdpPolicy.LOOPBACK_ONLY]
    ),
    pre_hops=st.integers(1, 3),
)
def test_reveals_exactly_the_hidden_lsrs(lsr_count, policy, pre_hops):
    network, vp, ingress, egress, customer, lsrs = build_tunnel_chain(
        lsr_count, policy, pre_hops
    )
    prober = Prober(ForwardingEngine(network))
    target = customer.incoming_address_from(egress)
    trace = prober.traceroute(vp, target)
    pair = candidate_endpoints(trace)
    assert pair is not None
    x, y = pair
    assert network.owner_of(x) is ingress
    assert network.owner_of(y) is egress
    revelation = reveal_tunnel(prober, vp, x, y)
    # Exactly the k LSRs, in forward order, nothing else.
    assert [
        network.owner_of(address) for address in revelation.revealed
    ] == lsrs
    # Classification follows Table 2.
    if lsr_count == 1:
        assert revelation.method is RevelationMethod.DPR_OR_BRPR
    elif policy is LdpPolicy.LOOPBACK_ONLY:
        assert revelation.method is RevelationMethod.DPR
    else:
        assert revelation.method is RevelationMethod.BRPR


@settings(max_examples=20, deadline=None)
@given(
    lsr_count=st.integers(1, 5),
    policy=st.sampled_from(
        [LdpPolicy.ALL_PREFIXES, LdpPolicy.LOOPBACK_ONLY]
    ),
)
def test_probing_cost_scales_with_method(lsr_count, policy):
    network, vp, ingress, egress, customer, lsrs = build_tunnel_chain(
        lsr_count, policy
    )
    prober = Prober(ForwardingEngine(network))
    target = customer.incoming_address_from(egress)
    trace = prober.traceroute(vp, target)
    x, y = candidate_endpoints(trace)
    revelation = reveal_tunnel(prober, vp, x, y)
    # DPR needs one trace plus the terminating one; BRPR needs one per
    # LSR plus the terminating one.
    if policy is LdpPolicy.LOOPBACK_ONLY or lsr_count == 1:
        assert revelation.traces_used <= 2
    else:
        assert revelation.traces_used == lsr_count + 1


@settings(max_examples=15, deadline=None)
@given(lsr_count=st.integers(1, 5))
def test_juniper_vendor_defaults_behave_like_loopback_only(lsr_count):
    network = Network()
    config = MplsConfig.from_vendor(JUNIPER, ttl_propagate=False)
    vp = network.add_router("VP", asn=1)
    ingress = network.add_router("IN", asn=2, vendor=JUNIPER, mpls=config)
    network.add_link(vp, ingress)
    previous = ingress
    for i in range(lsr_count):
        lsr = network.add_router(
            f"LSR{i}", asn=2, vendor=JUNIPER, mpls=config
        )
        network.add_link(previous, lsr)
        previous = lsr
    egress = network.add_router("OUT", asn=2, vendor=JUNIPER, mpls=config)
    network.add_link(previous, egress)
    customer = network.add_router("CUST", asn=3)
    network.add_link(customer, egress)
    prober = Prober(ForwardingEngine(network))
    target = customer.incoming_address_from(egress)
    trace = prober.traceroute(vp, target)
    pair = candidate_endpoints(trace)
    revelation = reveal_tunnel(prober, vp, *pair)
    assert revelation.tunnel_length == lsr_count
    if lsr_count > 1:
        assert revelation.method is RevelationMethod.DPR
