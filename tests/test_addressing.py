"""Unit and property tests for IPv4 addressing primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addressing import (
    MAX_ADDRESS,
    AddressAllocator,
    Prefix,
    PrefixTable,
    format_address,
    parse_address,
)

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
prefix_lengths = st.integers(min_value=0, max_value=32)


class TestParseFormat:
    def test_roundtrip_known_values(self):
        for text in ("0.0.0.0", "10.0.0.1", "172.16.5.255", "255.255.255.255"):
            assert format_address(parse_address(text)) == text

    def test_parse_rejects_garbage(self):
        for text in ("", "1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", "-1.0.0.0"):
            with pytest.raises(ValueError):
                parse_address(text)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_address(-1)
        with pytest.raises(ValueError):
            format_address(MAX_ADDRESS + 1)

    @given(addresses)
    def test_roundtrip_property(self, value):
        assert parse_address(format_address(value)) == value


class TestPrefix:
    def test_parse_and_str(self):
        prefix = Prefix.parse("10.1.0.0/16")
        assert str(prefix) == "10.1.0.0/16"
        assert prefix.length == 16

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix(parse_address("10.0.0.1"), 24)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)
        with pytest.raises(ValueError):
            Prefix(0, -1)

    def test_containing_masks_host_bits(self):
        prefix = Prefix.containing(parse_address("10.1.2.3"), 24)
        assert str(prefix) == "10.1.2.0/24"
        assert parse_address("10.1.2.3") in prefix

    def test_contains_boundaries(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert prefix.contains(parse_address("10.0.0.0"))
        assert prefix.contains(parse_address("10.0.0.3"))
        assert not prefix.contains(parse_address("10.0.0.4"))

    def test_hosts_conventional_subnet(self):
        hosts = list(Prefix.parse("10.0.0.0/30").hosts())
        assert [format_address(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_hosts_p2p_slash31(self):
        hosts = list(Prefix.parse("10.0.0.0/31").hosts())
        assert len(hosts) == 2

    def test_hosts_slash32(self):
        hosts = list(Prefix.parse("10.0.0.7/32").hosts())
        assert hosts == [parse_address("10.0.0.7")]

    def test_subnets(self):
        subs = list(Prefix.parse("10.0.0.0/24").subnets(26))
        assert len(subs) == 4
        assert str(subs[1]) == "10.0.0.64/26"

    def test_subnets_shorter_raises(self):
        with pytest.raises(ValueError):
            list(Prefix.parse("10.0.0.0/24").subnets(20))

    def test_covers(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_ordering_and_hash(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.1.0/24")
        assert a < b
        assert len({a, b, Prefix.parse("10.0.0.0/24")}) == 2

    @given(addresses, prefix_lengths)
    def test_containing_always_contains(self, address, length):
        prefix = Prefix.containing(address, length)
        assert prefix.contains(address)

    @given(addresses, st.integers(min_value=1, max_value=31))
    def test_num_addresses_matches_host_iteration(self, address, length):
        prefix = Prefix.containing(address, length)
        assert prefix.num_addresses == 1 << (32 - length)
        assert prefix.broadcast - prefix.network + 1 == prefix.num_addresses


class TestPrefixTable:
    def test_longest_match_wins(self):
        table = PrefixTable()
        table.insert(Prefix.parse("10.0.0.0/8"), "short")
        table.insert(Prefix.parse("10.1.0.0/16"), "long")
        assert table.lookup_value(parse_address("10.1.2.3")) == "long"
        assert table.lookup_value(parse_address("10.2.0.1")) == "short"

    def test_miss_returns_none(self):
        table = PrefixTable()
        table.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert table.lookup(parse_address("11.0.0.1")) is None

    def test_exact(self):
        table = PrefixTable()
        prefix = Prefix.parse("10.1.0.0/16")
        table.insert(prefix, "v")
        assert table.exact(prefix) == "v"
        assert table.exact(Prefix.parse("10.1.0.0/17")) is None

    def test_replace_keeps_size(self):
        table = PrefixTable()
        prefix = Prefix.parse("10.0.0.0/8")
        table.insert(prefix, 1)
        table.insert(prefix, 2)
        assert len(table) == 1
        assert table.exact(prefix) == 2

    def test_remove(self):
        table = PrefixTable()
        prefix = Prefix.parse("10.0.0.0/8")
        table.insert(prefix, "x")
        table.remove(prefix)
        assert len(table) == 0
        assert table.lookup(parse_address("10.0.0.1")) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            PrefixTable().remove(Prefix.parse("10.0.0.0/8"))

    def test_items_longest_first(self):
        table = PrefixTable()
        table.insert(Prefix.parse("10.0.0.0/8"), "a")
        table.insert(Prefix.parse("10.0.0.0/24"), "b")
        lengths = [prefix.length for prefix, _ in table.items()]
        assert lengths == sorted(lengths, reverse=True)

    @given(st.lists(st.tuples(addresses, st.integers(8, 32)), max_size=30), addresses)
    def test_lookup_agrees_with_linear_scan(self, entries, probe):
        table = PrefixTable()
        reference = {}
        for address, length in entries:
            prefix = Prefix.containing(address, length)
            table.insert(prefix, str(prefix))
            reference[prefix] = str(prefix)
        hit = table.lookup(probe)
        matches = [p for p in reference if p.contains(probe)]
        if not matches:
            assert hit is None
        else:
            best = max(matches, key=lambda p: p.length)
            assert hit is not None
            assert hit[0].length == best.length


class TestAllocator:
    def test_unique_links_and_loopbacks(self):
        allocator = AddressAllocator()
        seen = set()
        for _ in range(100):
            prefix, a, b = allocator.link_addresses()
            assert a != b
            assert a in prefix and b in prefix
            assert prefix not in seen
            seen.add(prefix)
        loopbacks = {allocator.next_loopback() for _ in range(100)}
        assert len(loopbacks) == 100

    def test_pools_must_be_disjoint(self):
        with pytest.raises(ValueError):
            AddressAllocator(
                link_pool="10.0.0.0/8", loopback_pool="10.1.0.0/16"
            )

    def test_exhaustion_raises(self):
        allocator = AddressAllocator(
            link_pool="10.0.0.0/30",
            loopback_pool="172.16.0.0/12",
            link_length=31,
        )
        allocator.next_link_prefix()
        allocator.next_link_prefix()
        with pytest.raises(RuntimeError):
            allocator.next_link_prefix()
