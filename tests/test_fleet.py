"""Fault-tolerant fleets: copy-on-churn, crash recovery, alerting.

The fleet subsystem's acceptance contracts:

1. **Copy-on-churn** — a clone of a frozen shared render is a
   private, unfrozen twin with bit-identical forwarding; churn runs
   on the twin while the original stays frozen for served tenants.
2. **Crash-identical recovery** — a chain hard-killed mid-epoch at
   every campaign phase boundary (and mid-phase, and mid-staleness)
   restarts from its checkpoints and converges to per-chain
   timelines and a ``repro.fleet/1`` aggregate byte-identical to an
   unfailed fleet's.  A watchdog-killed chain under hostile faults
   converges the same way.
3. **Park, don't fail** — a chain that exhausts its restart budget
   is parked; the fleet still returns, and the parked chain's
   missing epochs *downgrade* the fleet's data-quality grade.
4. **Drain** — a drain request finishes in-flight epochs, persists
   resumable state, and a resumed fleet completes byte-identically.
5. **Deterministic alerting** — churn-spike alerts are a pure
   function of warehouse content (same seed, same alerts).

Plus the satellite contracts: inspector tools render clean digests
for zero-completed-epoch chains and damaged tails, and the frozen /
admission error messages point at ``repro fleet``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fleet import (
    ChainWorker,
    FleetConfig,
    FleetSupervisor,
    WatchdogExpired,
    WorkerKilled,
)
from repro.fleet.supervisor import _ChainHarness
from repro.monitor import MonitorConfig, MonitorLoop, chain_id
from repro.net.topology import FrozenNetworkError
from repro.serve.registry import SnapshotRegistry, TopologySpec
from repro.store import FLEET_SCHEMA, fold_fleet, render_fleet
from repro.store.layout import read_phase_records
from repro.synth import ChurnModel, churn_profile
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import scaled_profiles

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small-but-real fleet shape shared by the expensive fixtures.
FLEET_KW = dict(
    chains=2,
    epochs=2,
    scale=0.3,
    seed=2017,
    vantage_points=3,
    stubs_per_transit=2,
    churn_profile="steady",
    backoff_base_ms=0.5,
)


def _fleet(warehouse, **overrides):
    kw = dict(FLEET_KW)
    kw.update(overrides)
    return FleetConfig(warehouse=str(warehouse), **kw)


def _run(warehouse, kill_plan=None, **overrides):
    supervisor = FleetSupervisor(
        _fleet(warehouse, **overrides), kill_plan=kill_plan
    )
    return supervisor.run(), supervisor


def _fleet_bytes(warehouse):
    return (Path(warehouse) / "fleet.json").read_bytes()


# ---------------------------------------------------------------------------
# 1. Copy-on-churn


class TestCopyOnChurn:
    @pytest.fixture(scope="class")
    def frozen_internet(self):
        internet = build_internet(
            InternetConfig(
                profiles=tuple(scaled_profiles(0.3)),
                vantage_points=3,
                stubs_per_transit=2,
                seed=2017,
            )
        )
        internet.network.freeze()
        return internet

    def test_clone_is_unfrozen_and_forwarding_identical(
        self, frozen_internet
    ):
        twin = frozen_internet.clone()
        assert frozen_internet.network.frozen
        assert not twin.network.frozen
        targets = frozen_internet.campaign_targets()
        assert twin.campaign_targets() == targets
        for vp, twin_vp in zip(frozen_internet.vps, twin.vps):
            assert vp.name == twin_vp.name
            for dst in targets[:5]:
                for ttl in (1, 3, 6, 255):
                    a = frozen_internet.engine.send_probe(
                        vp, dst, ttl
                    )
                    b = twin.engine.send_probe(twin_vp, dst, ttl)
                    assert (
                        a.reply_kind,
                        a.responder,
                        a.responder_router,
                        a.quoted_labels,
                        a.forward_path,
                    ) == (
                        b.reply_kind,
                        b.responder,
                        b.responder_router,
                        b.quoted_labels,
                        b.forward_path,
                    )

    def test_churn_runs_on_twin_original_stays_frozen(
        self, frozen_internet
    ):
        twin = frozen_internet.clone()
        model = ChurnModel(
            twin, churn_profile("turbulent"), seed=7
        )
        events = model.advance(1)
        assert events
        assert frozen_internet.network.frozen

    def test_churn_against_frozen_names_fleet_alternative(
        self, frozen_internet
    ):
        with pytest.raises(FrozenNetworkError) as excinfo:
            ChurnModel(
                frozen_internet, churn_profile("steady"), seed=7
            )
        message = str(excinfo.value)
        assert "copy-on-churn" in message
        assert "repro fleet" in message

    def test_injected_frozen_internet_rejected_with_hint(
        self, frozen_internet, tmp_path
    ):
        with pytest.raises(ValueError) as excinfo:
            MonitorLoop(
                MonitorConfig(
                    warehouse=str(tmp_path),
                    vantage_points=3,
                    stubs_per_transit=2,
                ),
                internet=frozen_internet,
            )
        assert "copy-on-churn" in str(excinfo.value)

    def test_injected_mismatched_internet_rejected(self, tmp_path):
        other = build_internet(
            InternetConfig(
                profiles=tuple(scaled_profiles(0.3)),
                vantage_points=2,
                stubs_per_transit=2,
                seed=99,
            )
        )
        with pytest.raises(ValueError) as excinfo:
            MonitorLoop(
                MonitorConfig(
                    warehouse=str(tmp_path),
                    vantage_points=3,
                    stubs_per_transit=2,
                ),
                internet=other,
            )
        message = str(excinfo.value)
        assert "seed" in message and "vantage_points" in message

    def test_registry_checkout_counts_and_reuses_render(self):
        registry = SnapshotRegistry()
        spec = TopologySpec(
            scale=0.3,
            vantage_points=3,
            stubs_per_transit=2,
        )
        first = registry.checkout(spec)
        second = registry.checkout(spec)
        assert registry.renders == 1
        assert registry.checkouts == 2
        assert first is not second
        assert not first.network.frozen
        assert registry.stats()["checkouts"] == 2


# ---------------------------------------------------------------------------
# 2. Crash-identical recovery


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def clean(self, tmp_path_factory):
        """An unfailed single-chain fleet: the byte-identity oracle."""
        warehouse = tmp_path_factory.mktemp("wh-clean")
        report, _ = _run(warehouse, chains=1)
        assert report.completed
        return warehouse

    def _phase_boundaries(self, warehouse):
        """Cumulative probe counts at epoch 0's phase boundaries."""
        snapshot_dirs = [
            path
            for path in Path(warehouse).iterdir()
            if (path / "MANIFEST.json").exists()
        ]
        epoch0 = None
        for path in snapshot_dirs:
            manifest = json.loads(
                (path / "MANIFEST.json").read_text()
            )
            stamp = manifest["fingerprint"]["topology"]["monitor"]
            if stamp["epoch"] == 0:
                epoch0 = path
        assert epoch0 is not None
        boundaries = []
        for phase in ("trace", "ping", "revelation"):
            records = read_phase_records(
                epoch0 / "phases" / f"{phase}.jsonl"
            )
            if records:
                boundaries.append(
                    records[-1]["state"]["service"]["probes_sent"]
                )
        return boundaries

    def test_kill_at_every_phase_boundary_converges(
        self, clean, tmp_path_factory
    ):
        oracle = _fleet_bytes(clean)
        boundaries = self._phase_boundaries(clean)
        assert len(boundaries) == 3
        epoch_end = boundaries[-1]
        kill_points = sorted(
            {1, *boundaries, *(b + 1 for b in boundaries),
             epoch_end + 40}
        )
        for kill_after in kill_points:
            warehouse = tmp_path_factory.mktemp(
                f"wh-kill{kill_after}"
            )
            report, _ = _run(
                warehouse, chains=1, kill_plan={0: kill_after}
            )
            outcome = report.chains[0]
            assert outcome.status == "completed", kill_after
            assert outcome.injected_kills == 1
            assert outcome.restarts == 1
            assert _fleet_bytes(warehouse) == oracle, (
                f"kill at probe {kill_after} did not converge "
                "byte-identically"
            )

    def test_killed_timeline_matches_clean_timeline(
        self, clean, tmp_path_factory
    ):
        warehouse = tmp_path_factory.mktemp("wh-kill-tl")
        report, _ = _run(warehouse, chains=1, kill_plan={0: 120})
        assert report.completed
        oracle = json.loads(_fleet_bytes(clean))
        crashed = json.loads(_fleet_bytes(warehouse))
        assert crashed == oracle
        assert crashed["schema"] == FLEET_SCHEMA
        # Restart bookkeeping lives in the ledger, never in the doc.
        assert report.chains[0].restarts == 1
        assert "restarts" not in json.dumps(oracle)

    def test_watchdog_under_hostile_faults_converges(
        self, tmp_path_factory
    ):
        clean = tmp_path_factory.mktemp("wh-hostile-clean")
        report, _ = _run(clean, chains=1, fault_profile="hostile")
        assert report.completed
        watched = tmp_path_factory.mktemp("wh-hostile-watchdog")
        report, _ = _run(
            watched,
            chains=1,
            fault_profile="hostile",
            epoch_deadline=150,
            restart_budget=60,
        )
        outcome = report.chains[0]
        assert outcome.status == "completed"
        assert outcome.watchdog_kills > 0
        assert _fleet_bytes(watched) == _fleet_bytes(clean)

    def test_multi_chain_crash_storm_converges(
        self, tmp_path_factory
    ):
        clean = tmp_path_factory.mktemp("wh-storm-clean")
        _run(clean)
        stormed = tmp_path_factory.mktemp("wh-storm")
        report, supervisor = _run(
            stormed, kill_plan={0: 90, 1: 250}
        )
        assert report.completed
        assert sum(c.injected_kills for c in report.chains) == 2
        assert _fleet_bytes(stormed) == _fleet_bytes(clean)
        # One shared render, one checkout per attempt.
        assert supervisor.registry.renders == 1
        assert supervisor.registry.checkouts == 4


# ---------------------------------------------------------------------------
# 3. Park, don't fail


class TestParking:
    @pytest.fixture(scope="class")
    def parked(self, tmp_path_factory):
        warehouse = tmp_path_factory.mktemp("wh-park")
        report, supervisor = _run(
            warehouse, kill_plan={1: 40}, restart_budget=0
        )
        return report, supervisor, warehouse

    def test_exhausted_budget_parks_instead_of_failing(
        self, parked
    ):
        report, _, _ = parked
        by_status = {c.index: c.status for c in report.chains}
        assert by_status == {0: "completed", 1: "parked"}
        assert report.parked[0].stop_reason is not None
        assert "parked" in report.parked[0].stop_reason

    def test_parked_chain_downgrades_fleet_grade(self, parked):
        report, _, _ = parked
        quality = report.document["data_quality"]
        assert quality["kind"] == "fleet"
        assert report.document["summary"]["grade"] != "high"
        parked_chain = report.parked[0].chain
        assert parked_chain in quality["incomplete"]
        assert quality["chains"][parked_chain]["coverage"] < 1.0

    def test_parked_chain_still_has_a_ledger_row(self, parked):
        report, _, _ = parked
        rows = {
            row["chain"]: row
            for row in report.document["chains"]
        }
        parked_chain = report.parked[0].chain
        assert rows[parked_chain]["epochs_completed"] == 0
        assert rows[parked_chain]["complete"] is False

    def test_fleet_metrics_family(self, parked):
        _, supervisor, _ = parked
        counters = supervisor.obs.metrics.counters_snapshot()
        assert counters["fleet.chains"] == 2
        assert counters["fleet.chains_completed"] == 1
        assert counters["fleet.chains_parked"] == 1
        assert counters["fleet.injected_kills"] == 1
        assert "fleet.epochs_completed" in counters

    def test_parked_warehouse_resumes_to_full_fleet(
        self, parked, tmp_path_factory
    ):
        _, _, warehouse = parked
        clean = tmp_path_factory.mktemp("wh-park-oracle")
        _run(clean)
        report, _ = _run(warehouse)  # no kills this time
        assert report.completed
        assert _fleet_bytes(warehouse) == _fleet_bytes(clean)


# ---------------------------------------------------------------------------
# 4. Drain


class TestDrain:
    def test_drain_finishes_in_flight_epoch_and_resumes(
        self, tmp_path_factory, monkeypatch
    ):
        clean = tmp_path_factory.mktemp("wh-drain-oracle")
        _run(clean, chains=1, epochs=3)
        warehouse = tmp_path_factory.mktemp("wh-drain")

        # Simulate SIGTERM landing while epoch 1 is in flight: the
        # drain flag is raised from inside the worker, so the next
        # boundary check (epoch 2) sees it — exactly the CLI's
        # signal-handler path, minus the race.
        original = ChainWorker._epoch_boundary

        def boundary(self, epoch):
            if epoch == 2:
                self._drain.set()
            return original(self, epoch)

        monkeypatch.setattr(
            ChainWorker, "_epoch_boundary", boundary
        )
        report, supervisor = _run(warehouse, chains=1, epochs=3)
        outcome = report.chains[0]
        assert report.drained
        assert outcome.status == "drained"
        assert "resume" in (outcome.stop_reason or "")
        # The in-flight epoch (1) finished cleanly — nothing partial.
        assert outcome.epochs_completed == 2
        monkeypatch.setattr(
            ChainWorker, "_epoch_boundary", original
        )
        resumed, _ = _run(warehouse, chains=1, epochs=3)
        assert resumed.completed
        assert _fleet_bytes(warehouse) == _fleet_bytes(clean)

    def test_drain_before_start_persists_nothing_but_resumes(
        self, tmp_path_factory
    ):
        warehouse = tmp_path_factory.mktemp("wh-drain-early")
        supervisor = FleetSupervisor(
            _fleet(warehouse, chains=1)
        )
        supervisor.request_drain()
        report = supervisor.run()
        assert report.chains[0].status == "drained"
        assert report.chains[0].epochs_completed == 0
        resumed, _ = _run(warehouse, chains=1)
        assert resumed.completed


# ---------------------------------------------------------------------------
# 5. Aggregation + alerting


class TestFleetDocument:
    @pytest.fixture(scope="class")
    def turbulent(self, tmp_path_factory):
        warehouse = tmp_path_factory.mktemp("wh-doc")
        report, _ = _run(
            warehouse, epochs=3, churn_profile="turbulent"
        )
        return report, warehouse

    def test_schema_and_sections(self, turbulent):
        report, _ = turbulent
        document = report.document
        assert document["schema"] == FLEET_SCHEMA
        assert len(document["chains"]) == 2
        assert document["per_as_baseline"]
        for row in document["per_as_baseline"]:
            assert (
                row["min_rate"]
                <= row["mean_rate"]
                <= row["max_rate"]
            )
        assert document["summary"]["chains"] == 2

    def test_document_is_pure_function_of_warehouse(
        self, turbulent, tmp_path_factory
    ):
        _, warehouse = turbulent
        rerun = tmp_path_factory.mktemp("wh-doc-rerun")
        _run(rerun, epochs=3, churn_profile="turbulent")
        assert _fleet_bytes(warehouse) == _fleet_bytes(rerun)

    def test_refold_matches_supervisor_fold(self, turbulent):
        report, warehouse = turbulent
        refolded = fold_fleet(
            warehouse,
            chains=[c.chain for c in report.chains],
            expected_epochs=3,
        )
        assert refolded == report.document

    def test_chain_zero_is_the_standalone_monitor_chain(
        self, tmp_path
    ):
        config = _fleet(tmp_path)
        standalone = MonitorConfig(
            warehouse=str(tmp_path),
            epochs=config.epochs,
            scale=config.scale,
            seed=config.seed,
            vantage_points=config.vantage_points,
            stubs_per_transit=config.stubs_per_transit,
            churn_profile=config.churn_profile,
        )
        ids = config.chain_ids()
        assert ids[0] == chain_id(standalone)
        assert len(set(ids)) == config.chains

    def test_render_fleet_mentions_grade_and_alerts(
        self, turbulent
    ):
        report, _ = turbulent
        text = render_fleet(report.document)
        assert "grade" in text
        assert "alert" in text

    def test_alert_fires_on_spike_with_trailing_baseline(self):
        from repro.store.fleet import _chain_alerts

        transitions = [
            {"epoch": 1, "events": 1, "by_as": {}},
            {"epoch": 2, "events": 1, "by_as": {}},
            {"epoch": 3, "events": 6,
             "by_as": {7018: 4, 3356: 2}},
        ]
        alerts = _chain_alerts("abc123", transitions, 2.0, 2)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert["kind"] == "churn-spike"
        assert alert["epoch"] == 3
        assert alert["baseline"] == 1.0
        assert alert["ratio"] == 6.0
        assert alert["ases"][0] == {"asn": 7018, "events": 4}

    def test_first_transition_never_alerts(self):
        from repro.store.fleet import _chain_alerts

        transitions = [
            {"epoch": 1, "events": 50, "by_as": {}},
        ]
        assert _chain_alerts("abc123", transitions, 2.0, 2) == []

    def test_quiet_chain_never_alerts(self):
        from repro.store.fleet import _chain_alerts

        transitions = [
            {"epoch": 1, "events": 0, "by_as": {}},
            {"epoch": 2, "events": 1, "by_as": {}},
            {"epoch": 3, "events": 1, "by_as": {}},
        ]
        assert _chain_alerts("abc123", transitions, 2.0, 2) == []


# ---------------------------------------------------------------------------
# Harness unit behaviour


class TestHarness:
    class _Backend:
        def __init__(self):
            self.submitted = 0

        def submit(self, request):
            self.submitted += 1
            return request

        def submit_batch(self, requests):
            self.submitted += len(requests)
            return list(requests)

    def test_kill_switch_is_one_shot(self):
        harness = _ChainHarness(kill_after=3)
        backend = harness.wrap(self._Backend())
        backend.submit("a")
        backend.submit("b")
        with pytest.raises(WorkerKilled):
            backend.submit("c")
        # The probe that killed was never forwarded.
        assert harness._inner.submitted == 2
        backend.submit("d")  # disarmed
        assert harness._inner.submitted == 3

    def test_watchdog_resets_at_epoch_boundary(self):
        harness = _ChainHarness(epoch_deadline=2)
        backend = harness.wrap(self._Backend())
        backend.submit_batch(["a", "b"])
        harness.start_epoch()
        backend.submit_batch(["c", "d"])
        with pytest.raises(WatchdogExpired):
            backend.submit("e")

    def test_delegates_unknown_attributes(self):
        harness = _ChainHarness()
        backend = harness.wrap(self._Backend())
        assert backend.submitted == 0


# ---------------------------------------------------------------------------
# Satellite: inspector tools on damaged / zero-epoch warehouses


class TestInspectors:
    @pytest.fixture(scope="class")
    def wounded(self, tmp_path_factory):
        """A fleet warehouse with one parked (zero-epoch) chain and
        one damaged phase tail."""
        warehouse = tmp_path_factory.mktemp("wh-inspect")
        _run(warehouse, kill_plan={1: 40}, restart_budget=0)
        for snapshot in Path(warehouse).iterdir():
            trace = snapshot / "phases" / "trace.jsonl"
            if trace.exists():
                with open(trace, "a") as handle:
                    handle.write('{"index": 999, "garbage"\n')
                break
        return warehouse

    def _tool(self, name, target):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / name),
             str(target)],
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_timeline_inspect_renders_clean_digest(self, wounded):
        proc = self._tool("timeline_inspect.py", wounded)
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
        assert "Fleet aggregate" in proc.stdout
        assert "in-flight" in proc.stdout
        assert "no completed epochs" in proc.stdout

    def test_store_inspect_renders_clean_digest(self, wounded):
        proc = self._tool("store_inspect.py", wounded)
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
        assert "Fleet aggregate" in proc.stdout
        assert "crashed mid-epoch" in proc.stdout
        assert "damaged tail" in proc.stdout
        assert "0 record(s)" not in proc.stdout


# ---------------------------------------------------------------------------
# Satellite: error messages point at the fleet


class TestGuidance:
    def test_admission_error_names_profile_and_fleet(self):
        from repro.serve.server import ServeClient
        from repro.serve.session import AdmissionError, TenantSpec

        client = ServeClient()
        try:
            with pytest.raises(AdmissionError) as excinfo:
                client.submit(
                    TenantSpec(tenant="t0", fault_profile="flap")
                )
        finally:
            client.close()
        message = str(excinfo.value)
        assert "'flap'" in message
        assert "repro fleet" in message
        assert "copy-on-churn" in message


# ---------------------------------------------------------------------------
# CLI


class TestFleetCli:
    def test_kill_plan_parsing(self):
        from repro.cli import _parse_kill_plan

        assert _parse_kill_plan(["0:80", "2"]) == {0: 80, 2: 100}
        assert _parse_kill_plan(None) == {}
        with pytest.raises(ValueError):
            _parse_kill_plan(["nope"])

    def test_fleet_cli_refuses_rerun_without_resume(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        warehouse = tmp_path / "wh"
        warehouse.mkdir()
        (warehouse / "fleet.json").write_text("{}")
        code = main(
            [
                "fleet",
                "--warehouse", str(warehouse),
                "--chains", "1",
                "--epochs", "1",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--resume" in err
