"""Round-trip tests for trace dataset serialization."""

import json

import pytest

from repro.experiments.common import ContextConfig, campaign_context
from repro.probing.dataset import (
    SCHEMA_VERSION,
    load_dataset,
    pings_from_dicts,
    pings_to_dicts,
    revelations_from_dicts,
    revelations_to_dicts,
    save_dataset,
    traces_from_dicts,
    traces_to_dicts,
)
from repro.synth.gns3 import build_gns3


@pytest.fixture(scope="module")
def context():
    return campaign_context(ContextConfig())


class TestTraceRoundTrip:
    def test_single_trace(self):
        testbed = build_gns3("default")
        trace = testbed.traceroute("CE2.left")
        (rebuilt,) = traces_from_dicts(traces_to_dicts([trace]))
        assert rebuilt.source == trace.source
        assert rebuilt.dst == trace.dst
        assert rebuilt.destination_reached
        assert rebuilt.addresses == trace.addresses
        assert [h.reply_ttl for h in rebuilt.hops] == [
            h.reply_ttl for h in trace.hops
        ]
        assert [h.quoted_labels for h in rebuilt.hops] == [
            h.quoted_labels for h in trace.hops
        ]

    def test_star_hops_survive(self):
        testbed = build_gns3("default")
        testbed.network.router("P1").icmp_enabled = False
        trace = testbed.traceroute("CE2.left")
        (rebuilt,) = traces_from_dicts(traces_to_dicts([trace]))
        assert any(not hop.responded for hop in rebuilt.hops)

    def test_campaign_traces(self, context):
        data = traces_to_dicts(context.result.traces)
        rebuilt = traces_from_dicts(data)
        assert len(rebuilt) == len(context.result.traces)
        # Serialization is JSON-safe.
        json.dumps(data)


class TestPingAndRevelationRoundTrip:
    def test_pings(self, context):
        data = pings_to_dicts(context.result.pings)
        rebuilt = pings_from_dicts(data)
        assert set(rebuilt) == set(context.result.pings)
        for address, result in rebuilt.items():
            original = context.result.pings[address]
            assert result.reply_ttl == original.reply_ttl
            assert result.source == original.source

    def test_revelations(self, context):
        data = revelations_to_dicts(context.result.revelations)
        rebuilt = revelations_from_dicts(data)
        assert set(rebuilt) == set(context.result.revelations)
        for key, revelation in rebuilt.items():
            original = context.result.revelations[key]
            assert revelation.revealed == original.revealed
            assert revelation.method is original.method
            assert revelation.step_reveals == original.step_reveals


class TestWholeDataset:
    def test_save_and_load(self, tmp_path, context):
        path = tmp_path / "campaign.json"
        save_dataset(
            path,
            context.result.traces,
            pings=context.result.pings,
            revelations=context.result.revelations,
            metadata={"seed": context.config.seed},
        )
        loaded = load_dataset(path)
        assert loaded["metadata"]["seed"] == context.config.seed
        assert len(loaded["traces"]) == len(context.result.traces)
        assert len(loaded["pings"]) == len(context.result.pings)
        assert len(loaded["revelations"]) == len(
            context.result.revelations
        )

    def test_analyses_run_on_loaded_traces(self, tmp_path, context):
        # Saved datasets must feed the analytical techniques directly.
        from repro.core.frpla import rfa_samples

        path = tmp_path / "campaign.json"
        save_dataset(path, context.result.traces)
        loaded = load_dataset(path)
        original = rfa_samples(context.result.traces)
        replayed = rfa_samples(loaded["traces"])
        assert [s.rfa for s in replayed] == [s.rfa for s in original]

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.json"
        save_dataset(path, [])
        loaded = load_dataset(path)
        assert loaded["traces"] == []
        assert loaded["pings"] == {}
        assert loaded["revelations"] == {}
        assert SCHEMA_VERSION == 1


class TestDatasetReplay:
    def test_saved_dataset_regenerates_tables(self, tmp_path, context):
        # The "freely available dataset" loop: save, reload, and
        # rebuild the per-AS aggregation from the file alone.
        from repro.campaign.orchestrator import CampaignResult
        from repro.campaign.postprocess import Aggregator

        path = tmp_path / "campaign.json"
        save_dataset(
            path,
            context.result.traces,
            pings=context.result.pings,
            revelations=context.result.revelations,
        )
        loaded = load_dataset(path)
        replayed = CampaignResult(
            traces=loaded["traces"],
            pings=loaded["pings"],
            revelations=loaded["revelations"],
        )
        # Rebuild pairs from the revelation keys (the dataset's
        # ground-truth-free view).
        from repro.campaign.orchestrator import CandidatePair

        for (x, y), _ in replayed.revelations.items():
            asn = context.asn_of(x)
            replayed.pairs.append(
                CandidatePair(
                    vp="replay", ingress=x, egress=y, asn=asn,
                    trace=replayed.traces[0],
                )
            )
        aggregator = Aggregator(replayed, context.asn_of)
        original = context.aggregator
        for asn in original.asns():
            fresh = aggregator.revelation_summary(asn)
            reference = original.revelation_summary(asn)
            assert fresh.revealed_pairs == reference.revealed_pairs
            assert fresh.lsr_ips == reference.lsr_ips
