"""Technique registry: units, legacy bit-identity, TNT campaigns.

The contract under test (ISSUE: pluggable technique registry): the
four LDP techniques are registry entries whose campaign results are
byte-identical to the classic hardwired stack; triggers gate the
``tnt`` revelation family per pair; degrade grading and the campaign
report enumerate the registry instead of hardcoded names; and the
registry rejects unknown or non-revealing techniques up front.
"""

import pytest

from repro.campaign.degrade import assess_data_quality
from repro.campaign.report import render_report
from repro.core.revelation import RevelationMethod, reveal_tunnel
from repro.core.technique import (
    BRPR_METHODS,
    DPR_METHODS,
    Technique,
    TechniqueRegistry,
    TriggerContext,
    default_techniques,
)
from repro.experiments.common import CampaignContext, ContextConfig

BASE = dict(
    scale=0.4,
    seed=11,
    vantage_points=3,
    stubs_per_transit=2,
)

RESULT_FIELDS = (
    "traces",
    "pings",
    "pairs",
    "revelations",
    "probes_sent",
    "revelation_probes",
)


class TestRegistry:
    def test_default_entries_in_order(self):
        registry = default_techniques()
        assert registry.names() == [
            "frpla", "rtla", "dpr", "brpr", "tnt",
        ]
        assert len(registry) == 5
        assert "tnt" in registry

    def test_duplicate_registration_rejected(self):
        registry = default_techniques()
        with pytest.raises(ValueError):
            registry.register(Technique(name="tnt", kind="revelation"))

    def test_unknown_get_names_known(self):
        registry = default_techniques()
        with pytest.raises(KeyError, match="frpla"):
            registry.get("nope")

    def test_kinds_and_applicability(self):
        registry = default_techniques()
        assert registry.get("frpla").kind == "analysis"
        assert registry.get("dpr").kind == "revelation"
        # LDP techniques stay LDP-scoped; TNT spans both classes.
        assert registry.get("dpr").applicable("ldp")
        assert not registry.get("dpr").applicable("rsvp-te")
        assert registry.get("tnt").applicable("ldp")
        assert registry.get("tnt").applicable("rsvp-te")

    def test_scopes_and_revealers(self):
        registry = default_techniques()
        assert set(registry.scopes()) >= {"dpr", "brpr", "tnt"}
        # dpr/brpr expose single-shot primitives; only tnt ships a
        # full pair-level revelation strategy.
        assert {t.name for t in registry.revealers()} == {"tnt"}

    def test_primitives_are_the_module_functions(self):
        from repro.core.brpr import backward_recursive_revelation
        from repro.core.dpr import direct_path_revelation

        registry = default_techniques()
        assert registry.get("dpr").primitive is direct_path_revelation
        assert (
            registry.get("brpr").primitive
            is backward_recursive_revelation
        )

    def test_method_families(self):
        assert RevelationMethod.DPR in DPR_METHODS
        assert RevelationMethod.BRPR in BRPR_METHODS
        assert RevelationMethod.DPR_OR_BRPR in DPR_METHODS
        assert RevelationMethod.DPR_OR_BRPR in BRPR_METHODS


def _hop(address, probe_ttl, rfa):
    """A real time-exceeded TraceHop with the requested RFA.

    ``rfa_of_hop`` derives RFA as (255 − reply_ttl + 1) − probe_ttl,
    so the reply TTL is solved backwards from the target value.
    """
    from repro.probing.prober import TraceHop

    return TraceHop(
        probe_ttl=probe_ttl,
        address=address,
        reply_kind="time-exceeded",
        reply_ttl=255 + 1 - (rfa + probe_ttl),
    )


class _FakeTrace:
    def __init__(self, hops):
        self._hops = {hop.address: hop for hop in hops}

    def hop_of(self, address):
        return self._hops.get(address)


class _FakePair:
    def __init__(self, trace, ingress=1, egress=2):
        self.trace = trace
        self.ingress = ingress
        self.egress = egress


class _FakeEstimate:
    def __init__(self, tunnel_length):
        self.tunnel_length = tunnel_length


class _FakeRtla:
    def __init__(self, lengths):
        self._lengths = lengths

    def estimate(self, address):
        if address not in self._lengths:
            return None
        return _FakeEstimate(self._lengths[address])


class _FakeResult:
    def __init__(self, lengths=None):
        self.rtla = _FakeRtla(lengths or {})


class TestTriggers:
    def _context(self, egress_rfa, lengths=None):
        trace = _FakeTrace([
            _hop(1, probe_ttl=3, rfa=0),
            _hop(2, probe_ttl=4, rfa=egress_rfa),
        ])
        pair = _FakePair(trace)
        return TriggerContext(pair=pair, result=_FakeResult(lengths))

    def test_frpla_trigger_fires_on_rfa_jump(self):
        frpla = default_techniques().get("frpla")
        assert frpla.trigger(self._context(egress_rfa=3))
        assert not frpla.trigger(self._context(egress_rfa=1))

    def test_rtla_trigger_fires_on_estimated_length(self):
        rtla = default_techniques().get("rtla")
        assert rtla.trigger(
            self._context(egress_rfa=0, lengths={2: 2})
        )
        assert not rtla.trigger(self._context(egress_rfa=0))

    def test_tnt_trigger_is_the_disjunction(self):
        tnt = default_techniques().get("tnt")
        assert tnt.trigger(self._context(egress_rfa=3))
        assert tnt.trigger(
            self._context(egress_rfa=0, lengths={2: 1})
        )
        assert not tnt.trigger(self._context(egress_rfa=0))


class TestLegacyBitIdentity:
    """The registry refactor must not perturb classic campaigns."""

    def test_registry_campaign_matches_legacy_reveal(self):
        context = CampaignContext(ContextConfig(**BASE))
        result = context.result
        assert result.revelations
        # Every stored revelation carries the legacy stamp...
        assert all(
            revelation.technique == "combined"
            for revelation in result.revelations.values()
        )
        # ...and re-running the classic recursion per pair reproduces
        # each of them exactly (the simulator is deterministic, so a
        # divergence can only come from the dispatch refactor).
        vp_by_name = {vp.name: vp for vp in context.internet.vps}
        config = context.campaign.config
        for pair in result.pairs:
            revelation = reveal_tunnel(
                context.internet.prober,
                vp_by_name[pair.vp],
                pair.ingress,
                pair.egress,
                max_steps=config.max_revelation_steps,
                start_ttl=config.start_ttl,
            )
            assert (
                revelation
                == result.revelations[(pair.ingress, pair.egress)]
            )

    def test_custom_registry_without_tnt_changes_nothing_measured(self):
        from repro.campaign.orchestrator import Campaign, CampaignConfig

        baseline = CampaignContext(ContextConfig(**BASE))
        legacy = TechniqueRegistry()
        for technique in default_techniques():
            if technique.name != "tnt":
                legacy.register(technique)
        internet = CampaignContext(ContextConfig(**BASE)).internet
        campaign = Campaign(
            internet.prober,
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(internet.transit_asns)
            ),
            techniques=legacy,
        )
        result = campaign.run(internet.campaign_targets())
        for name in RESULT_FIELDS:
            assert getattr(result, name) == getattr(
                baseline.result, name
            ), name
        # Only the grading differs: no tnt entry to score.
        assert set(result.data_quality["techniques"]) == {
            "frpla", "rtla", "dpr", "brpr",
        }


class TestCampaignTechniqueDispatch:
    def test_unknown_technique_rejected(self):
        with pytest.raises(KeyError):
            CampaignContext(
                ContextConfig(revelation_technique="nope", **BASE)
            )

    def test_analysis_technique_rejected(self):
        with pytest.raises(ValueError, match="revelation"):
            CampaignContext(
                ContextConfig(revelation_technique="frpla", **BASE)
            )

    def test_tnt_campaign_stamps_and_gates(self):
        context = CampaignContext(
            ContextConfig(revelation_technique="tnt", **BASE)
        )
        result = context.result
        assert result.pairs
        assert len(result.revelations) == len(result.pairs)
        triggered = skipped = 0
        for revelation in result.revelations.values():
            assert revelation.technique == "tnt"
            if revelation.method is RevelationMethod.NONE and (
                not revelation.revealed
                and revelation.probes_used == 0
            ):
                skipped += 1
            else:
                triggered += 1
        metrics = context.campaign.obs.metrics
        assert metrics.get("technique.tnt.triggered") == triggered
        assert (
            metrics.get("technique.tnt.triggered")
            + metrics.get("technique.tnt.skipped")
            == len(result.pairs)
        )
        assert skipped == metrics.get("technique.tnt.skipped")
        # Triggered pairs reveal through the shared recursion, so the
        # revealed tunnels match the classic stack's on those pairs.
        baseline = CampaignContext(ContextConfig(**BASE)).result
        for key, revelation in result.revelations.items():
            if revelation.probes_used > 0:
                twin = baseline.revelations[key]
                assert revelation.revealed == twin.revealed
                assert revelation.method == twin.method

    def test_quality_and_report_enumerate_registry(self):
        context = CampaignContext(
            ContextConfig(revelation_technique="tnt", **BASE)
        )
        quality = context.result.data_quality
        assert set(quality["techniques"]) == set(
            default_techniques().names()
        )
        report = render_report(
            context.result, context.aggregator, frpla=context.frpla
        )
        assert "tnt confidence" in report

    def test_assess_quality_accepts_custom_registry(self):
        context = CampaignContext(ContextConfig(**BASE))
        registry = TechniqueRegistry()
        for technique in default_techniques():
            if technique.name in ("frpla", "dpr"):
                registry.register(technique)
        quality = assess_data_quality(
            context.result, {}, techniques=registry
        )
        assert set(quality["techniques"]) == {"frpla", "dpr"}
