"""Tests for CSV figure export."""

import csv

import pytest

from repro.experiments.export import (
    export_all_figures,
    export_distribution,
    write_series,
)
from repro.stats.distributions import Distribution


class TestWriters:
    def test_write_series(self, tmp_path):
        path = tmp_path / "s.csv"
        write_series(path, ["a", "b"], [(1, 2), (3, 4)])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_export_distribution(self, tmp_path):
        path = tmp_path / "d.csv"
        export_distribution(path, Distribution([1, 1, 2]), label="x")
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "pdf", "cdf"]
        assert float(rows[1][1]) == pytest.approx(2 / 3)
        assert float(rows[-1][2]) == pytest.approx(1.0)


class TestExportAllFigures:
    def test_all_series_written(self, tmp_path):
        written = export_all_figures(tmp_path)
        names = {path.name for path in written}
        expected = {
            "fig01_degree_pdf.csv",
            "fig05_ftl_pdf.csv",
            "fig06_rtt_curves.csv",
            "fig07_rfa_pdf.csv",
            "fig08_rfa_pdf.csv",
            "fig09_rtla_pdf.csv",
            "fig10_degree_pdf.csv",
            "fig11_pathlen_pdf.csv",
        }
        assert expected <= names
        for path in written:
            with open(path) as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2  # header + at least one data row

    def test_pdf_columns_sum_to_one_per_curve(self, tmp_path):
        export_all_figures(tmp_path)
        with open(tmp_path / "fig11_pathlen_pdf.csv") as handle:
            rows = list(csv.DictReader(handle))
        total = sum(
            float(row["pdf"])
            for row in rows
            if row["curve"] == "invisible"
        )
        assert total == pytest.approx(1.0)
