"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestEmulate:
    def test_backward_recursive_transcript(self, capsys):
        assert main(["emulate", "backward-recursive"]) == 0
        out = capsys.readouterr().out
        assert "PE1.left" in out
        assert "P1.left" not in out  # tunnel hidden

    def test_default_shows_labels(self, capsys):
        main(["emulate", "default"])
        out = capsys.readouterr().out
        assert "MPLS Label" in out

    def test_custom_target(self, capsys):
        main(["emulate", "explicit-route", "--target", "PE2.left"])
        out = capsys.readouterr().out
        assert "P2.left" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["emulate", "bogus"])


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "<255, 255>" in out

    def test_fig11(self, capsys):
        assert main(["experiment", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "path length" in out.lower()

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestList:
    def test_lists_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in EXPERIMENTS:
            assert identifier in out
        assert len(EXPERIMENTS) == 17  # 15 paper artefacts + graphs + tnt


class TestCampaign:
    def test_campaign_prints_tables_and_saves(self, capsys, tmp_path):
        path = tmp_path / "dataset.json"
        code = main(["campaign", "--save", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tunnels revealed" in out
        assert "Table 4" in out
        assert "Table 5" in out
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert document["traces"]


class TestServe:
    def test_serve_multi_tenant_summary(self, capsys, tmp_path):
        path = tmp_path / "serve.json"
        code = main([
            "serve", "--tenants", "4", "--snapshots", "2",
            "--scale", "0.3", "--seed", "11",
            "--vantage-points", "3", "--stubs-per-transit", "2",
            "--max-targets", "4", "--json", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant-00" in out and "tenant-03" in out
        assert "2 rendered" in out
        document = json.loads(path.read_text())
        assert document["registry"]["renders"] == 2
        assert document["registry"]["builds_avoided"] == 2
        assert len(document["scheduler"]) == 4

    def test_serve_rejects_bad_weights(self, capsys):
        assert main(["serve", "--weights", "fast,slow"]) == 2

    def test_serve_rejects_mutating_profile(self, capsys):
        assert main(
            ["serve", "--tenants", "1", "--fault-profile", "flap"]
        ) == 2


class TestConfigs:
    def test_single_router_config(self, capsys):
        assert main(
            ["configs", "totally-invisible", "--router", "PE2"]
        ) == 0
        out = capsys.readouterr().out
        assert "hostname PE2" in out
        assert "mpls ldp explicit-null" in out

    def test_whole_testbed(self, capsys):
        assert main(["configs", "backward-recursive"]) == 0
        out = capsys.readouterr().out
        assert "### PE1" in out
        assert "### CE2" in out
        assert "no mpls ip propagate-ttl" in out


class TestExport:
    def test_export_writes_csvs(self, capsys, tmp_path):
        assert main(["export", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig07_rfa_pdf.csv" in out
        assert (tmp_path / "fig05_ftl_pdf.csv").exists()


class TestCampaignOptions:
    def test_scale_flag(self, capsys):
        assert main(
            ["campaign", "--scale", "0.4", "--seed", "123",
             "--vantage-points", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out


class TestCampaignCheckpoint:
    def test_checkpoint_resume_and_diff(self, capsys, tmp_path):
        warehouse = tmp_path / "warehouse"
        args = ["campaign", "--scale", "0.5", "--seed", "11"]
        assert main(
            args + ["--probe-budget", "400",
                    "--checkpoint", str(warehouse)]
        ) == 0
        out = capsys.readouterr().out
        assert "PARTIAL RUN" in out
        assert "snapshot:" in out
        assert f"--resume {warehouse}" in out

        assert main(args + ["--resume", str(warehouse)]) == 0
        out = capsys.readouterr().out
        assert "PARTIAL RUN" not in out
        assert "snapshot:" in out

        diff_json = tmp_path / "diff.json"
        assert main(
            ["diff", str(warehouse), str(warehouse),
             "--json", str(diff_json)]
        ) == 0
        out = capsys.readouterr().out
        assert "Tunnel churn" in out
        document = json.loads(diff_json.read_text())
        assert document["schema"] == "repro.store.diff/1"
        assert document["summary"]["appeared"] == 0
        assert document["summary"]["unchanged"] > 0

    def test_resume_without_warehouse_fails(self, capsys, tmp_path):
        code = main(
            ["campaign", "--scale", "0.5", "--seed", "11",
             "--resume", str(tmp_path / "nowhere")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_rejects_empty_directory(self, capsys, tmp_path):
        assert main(["diff", str(tmp_path), str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_and_resume_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["campaign", "--checkpoint", "a", "--resume", "b"]
            )
        capsys.readouterr()
