"""Fidelity tests for specific claims made in the paper's prose.

Each test pins one sentence of the paper to observable simulator
behaviour — the long tail of small claims beyond the tables/figures.
"""


from repro.core.revelation import candidate_endpoints, reveal_tunnel
from repro.dataplane.engine import ForwardingEngine
from repro.mpls.config import MplsConfig
from repro.net.topology import Network
from repro.net.vendors import CISCO
from repro.probing.prober import Prober
from repro.synth.gns3 import build_gns3


def two_invisible_ases():
    """VP | AS2 (invisible) | AS3 (invisible) | stub AS4."""
    network = Network()
    config = MplsConfig.from_vendor(CISCO, ttl_propagate=False)
    vp = network.add_router("VP", asn=1)
    as2 = [
        network.add_router(f"A{i}", asn=2, mpls=config) for i in range(4)
    ]
    as3 = [
        network.add_router(f"B{i}", asn=3, mpls=config) for i in range(4)
    ]
    dst = network.add_router("DST", asn=4)
    network.add_link(vp, as2[0])
    for a, b in zip(as2, as2[1:]):
        network.add_link(a, b)
    network.add_link(as2[-1], as3[0])
    for a, b in zip(as3, as3[1:]):
        network.add_link(a, b)
    network.add_link(dst, as3[-1])  # customer numbers the uplink
    return network, vp, dst


class TestMultipleTunnelLimitation:
    """Sec. 7: "when a trace goes through several invisible tunnels,
    our current set of techniques only reveal the last one"."""

    def test_only_last_tunnel_pair_extracted(self):
        network, vp, dst = two_invisible_ases()
        prober = Prober(ForwardingEngine(network))
        target = dst.incoming_address_from(network.router("B3"))
        trace = prober.traceroute(vp, target)
        pair = candidate_endpoints(trace)
        assert pair is not None
        ingress, egress = pair
        # The extracted candidates sit in AS3 — the *last* tunnel.
        assert network.owner_of(ingress).asn == 3
        assert network.owner_of(egress).asn == 3

    def test_last_tunnel_revealed_first_still_hidden(self):
        network, vp, dst = two_invisible_ases()
        prober = Prober(ForwardingEngine(network))
        target = dst.incoming_address_from(network.router("B3"))
        trace = prober.traceroute(vp, target)
        ingress, egress = candidate_endpoints(trace)
        revelation = reveal_tunnel(prober, vp, ingress, egress)
        assert revelation.success
        revealed_asns = {
            network.owner_of(a).asn for a in revelation.revealed
        }
        assert revealed_asns == {3}
        # AS2's hidden LSRs (A1, A2) stay hidden in this pass.
        revealed_names = {
            network.owner_of(a).name for a in revelation.revealed
        }
        assert not revealed_names & {"A1", "A2"}


class TestShortTunnelStatement:
    """Sec. 5.1 footnote 12: one-LSR tunnels are where DPR and BRPR
    become indistinguishable — and Fig. 5 calls them out separately."""

    def test_single_lsr_tunnel_is_ambiguous(self):
        network = Network()
        config = MplsConfig.from_vendor(CISCO, ttl_propagate=False)
        vp = network.add_router("VP", asn=1)
        ingress = network.add_router("IN", asn=2, mpls=config)
        lsr = network.add_router("LSR", asn=2, mpls=config)
        egress = network.add_router("OUT", asn=2, mpls=config)
        dst = network.add_router("DST", asn=3)
        network.add_link(vp, ingress)
        network.add_link(ingress, lsr)
        network.add_link(lsr, egress)
        network.add_link(dst, egress)
        prober = Prober(ForwardingEngine(network))
        target = dst.incoming_address_from(egress)
        trace = prober.traceroute(vp, target)
        pair = candidate_endpoints(trace)
        revelation = reveal_tunnel(prober, vp, *pair)
        assert revelation.tunnel_length == 1
        assert revelation.method.value == "dpr-or-brpr"


class TestTimeExceededDetour:
    """Sec. 3.3: "time-exceeded messages generated inside a tunnel are
    first forwarded to the end of the tunnel" — the reason P1 and P2
    show return TTLs 247/248 in Fig. 4a."""

    def test_mid_tunnel_replies_take_the_detour(self):
        testbed = build_gns3("default")
        trace = testbed.traceroute("CE2.left")
        p1 = trace.hop_of(testbed.address("P1.left"))
        p2 = trace.hop_of(testbed.address("P2.left"))
        p3 = trace.hop_of(testbed.address("P3.left"))
        # P1 sits *closer* than P2 yet returns a *smaller* TTL: its
        # reply detoured further down the LSP.
        assert p1.probe_ttl < p2.probe_ttl
        assert p1.reply_ttl < p2.reply_ttl
        # P3 is the LH: it pops locally and replies directly, so its
        # reply TTL jumps back up.
        assert p3.reply_ttl > p2.reply_ttl


class TestIngressNeighborsAllEgresses:
    """Sec. 1: "an entry point of an MPLS network appears as the
    neighbor of all exit points"."""

    def test_false_adjacency_mesh(self):
        from repro.analysis.itdk import TraceGraph
        from repro.experiments.common import campaign_context

        context = campaign_context()
        graph = TraceGraph(context.alias_of, context.asn_of)
        graph.add_traces(context.result.traces)
        # Pick the ingress with the most pairs; each of its egresses
        # must appear as a direct neighbour in the trace graph.
        by_ingress = {}
        for pair in context.result.pairs:
            by_ingress.setdefault(pair.ingress, []).append(pair.egress)
        ingress, egresses = max(
            by_ingress.items(), key=lambda kv: len(kv[1])
        )
        node = graph.node_of(ingress)
        neighbors = graph.neighbors(node)
        for egress in egresses:
            assert graph.node_of(egress) in neighbors
