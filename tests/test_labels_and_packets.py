"""Unit and property tests for MPLS label stacks and the packet model."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane.packet import (
    ECHO_REPLY,
    ECHO_REQUEST,
    TIME_EXCEEDED,
    Packet,
)
from repro.mpls.labels import (
    FIRST_UNRESERVED_LABEL,
    IMPLICIT_NULL,
    LabelAllocator,
    LabelStackEntry,
)
from repro.net.addressing import Prefix


class TestLabelStackEntry:
    def test_encode_known_value(self):
        # label=3 (implicit null), tc=0, bottom=1, ttl=255
        entry = LabelStackEntry(IMPLICIT_NULL, ttl=255)
        assert entry.encode() == (3 << 12) | (1 << 8) | 255

    def test_decode_inverse(self):
        entry = LabelStackEntry(19, ttl=1, bottom=True, tc=5)
        assert LabelStackEntry.decode(entry.encode()) == entry

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LabelStackEntry(1 << 20, ttl=1)
        with pytest.raises(ValueError):
            LabelStackEntry(1, ttl=256)
        with pytest.raises(ValueError):
            LabelStackEntry(1, ttl=1, tc=8)
        with pytest.raises(ValueError):
            LabelStackEntry.decode(1 << 32)

    def test_copy_is_independent(self):
        entry = LabelStackEntry(19, ttl=10)
        clone = entry.copy()
        clone.ttl -= 1
        assert entry.ttl == 10

    def test_as_tuple(self):
        assert LabelStackEntry(21, ttl=1).as_tuple() == (21, 1)

    @given(
        st.integers(0, (1 << 20) - 1),
        st.integers(0, 255),
        st.booleans(),
        st.integers(0, 7),
    )
    def test_roundtrip_property(self, label, ttl, bottom, tc):
        entry = LabelStackEntry(label, ttl=ttl, bottom=bottom, tc=tc)
        decoded = LabelStackEntry.decode(entry.encode())
        assert (decoded.label, decoded.ttl, decoded.bottom, decoded.tc) == (
            label, ttl, bottom, tc,
        )


class TestLabelAllocator:
    def test_sequential_from_16(self):
        allocator = LabelAllocator()
        fec = Prefix.parse("10.0.0.0/30")
        assert allocator.binding("r1", fec) == FIRST_UNRESERVED_LABEL
        assert allocator.binding("r2", fec) == FIRST_UNRESERVED_LABEL + 1

    def test_stable_per_router_fec(self):
        allocator = LabelAllocator()
        fec = Prefix.parse("10.0.0.0/30")
        first = allocator.binding("r1", fec)
        assert allocator.binding("r1", fec) == first
        assert len(allocator) == 1

    def test_distinct_fecs_get_distinct_labels(self):
        allocator = LabelAllocator()
        a = allocator.binding("r1", Prefix.parse("10.0.0.0/30"))
        b = allocator.binding("r1", Prefix.parse("10.0.0.4/30"))
        assert a != b


class TestPacket:
    def test_push_pop_tracks_fec(self):
        packet = Packet(src=1, dst=2, ip_ttl=64, kind=ECHO_REQUEST)
        fec = Prefix.parse("10.0.0.0/30")
        packet.push(LabelStackEntry(19, ttl=255), fec)
        assert packet.labeled
        assert packet.fec == fec
        assert packet.top.bottom  # first entry is bottom of stack
        popped = packet.pop()
        assert popped.label == 19
        assert not packet.labeled
        assert packet.fec is None

    def test_nested_push_marks_bottom_correctly(self):
        packet = Packet(src=1, dst=2, ip_ttl=64, kind=ECHO_REQUEST)
        fec_a = Prefix.parse("10.0.0.0/30")
        fec_b = Prefix.parse("10.0.0.4/30")
        packet.push(LabelStackEntry(19, ttl=255), fec_a)
        packet.push(LabelStackEntry(20, ttl=255), fec_b)
        assert not packet.top.bottom
        assert packet.fec == fec_b

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Packet(src=1, dst=2, ip_ttl=64, kind="redirect")

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            Packet(src=1, dst=2, ip_ttl=256, kind=ECHO_REPLY)

    def test_valid_kinds(self):
        for kind in (ECHO_REQUEST, ECHO_REPLY, TIME_EXCEEDED):
            Packet(src=1, dst=2, ip_ttl=1, kind=kind)
