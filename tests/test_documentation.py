"""Documentation gates: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
walks the package and enforces it, so documentation debt fails CI
instead of accumulating.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_MODULES = set()


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name in EXEMPT_MODULES:
            continue
        modules.append(importlib.import_module(info.name))
    return modules


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        yield name, member


@pytest.mark.parametrize(
    "module", _public_modules(), ids=lambda m: m.__name__
)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize(
    "module", _public_modules(), ids=lambda m: m.__name__
)
def test_public_items_documented(module):
    undocumented = []
    for name, member in _public_members(module):
        if not inspect.getdoc(member):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(attr)
                    or isinstance(attr, property)
                ):
                    continue
                target = attr.fget if isinstance(attr, property) else attr
                if target is None or not inspect.getdoc(target):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )
