#!/usr/bin/env python3
"""Reproduce the paper's Fig. 4 emulation transcripts.

Builds the Fig. 2 topology under each of the four MPLS configurations
of Sec. 3.3 and prints the paris-traceroute outputs — hop names,
quoted MPLS labels, and the bracketed return TTLs — in the exact
format of Fig. 4.  Compare against the paper: they match hop for hop.

Run:  python examples/gns3_emulation.py
"""

from repro.experiments.fig04_gns3 import run


def main() -> None:
    result = run()
    for scenario, transcripts in result.transcripts.items():
        print("=" * 64)
        print(f"Scenario: {scenario}")
        print("=" * 64)
        for transcript in transcripts:
            print(transcript)
            print()


if __name__ == "__main__":
    main()
