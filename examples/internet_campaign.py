#!/usr/bin/env python3
"""Full measurement campaign over the synthetic Internet.

Rebuilds the paper's Sec. 4–6 pipeline end to end: a multi-AS Internet
with ten MPLS transit operators (profiles patterned on Table 5),
Paris-traceroute sweeps from distributed vantage points, TTL
fingerprinting, candidate Ingress–Egress extraction, DPR/BRPR
revelation, and the per-AS summary tables.

Run:  python examples/internet_campaign.py
"""

from repro.experiments import (
    fig05_ftl,
    fig07_rfa,
    table3_crossval,
    table4_per_as,
    table5_deployment,
)
from repro.experiments.common import campaign_context


def main() -> None:
    context = campaign_context()
    result = context.result
    print(
        f"Internet: {context.internet.network} — "
        f"{len(context.internet.vps)} vantage points"
    )
    print(
        f"Campaign: {len(result.traces)} traces, "
        f"{len(result.pings)} pinged addresses, "
        f"{len(result.pairs)} candidate I-E pairs, "
        f"{len(result.successful_revelations())} tunnels revealed "
        f"({result.probes_sent} + {result.revelation_probes} probes)"
    )
    print()
    print(table4_per_as.run().text)
    print()
    print(table5_deployment.run().text)
    print()
    print(fig05_ftl.run().text)
    print()
    print(fig07_rfa.run().text)
    print()
    print(table3_crossval.run().text)


if __name__ == "__main__":
    main()
