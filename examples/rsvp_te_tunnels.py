#!/usr/bin/env python3
"""RSVP-TE traffic engineering and the limits of revelation.

The paper's survey: 42% of operators run RSVP-TE alongside LDP, and
UHP — which defeats all four techniques — "is generally used only when
the operator implements sophisticated traffic engineering".  This
example pins transit traffic to an explicit detour path with a TE
tunnel and shows:

1. the IGP path vs the TE-steered path (ground truth),
2. what traceroute sees under PHP vs UHP popping,
3. that the revelation pipeline comes up empty either way: DPR/BRPR
   walk the IGP/LDP routes toward the egress, and an RSVP-TE detour
   is simply not there — the paper's Sec. 3.4 caveat ("UHP, mainly
   designed for traffic engineering oriented tunnels, turns RSVP-TE
   tunnels really invisible").

Run:  python examples/rsvp_te_tunnels.py
"""

from repro import MplsConfig, Network, PoppingMode, Prober, reveal_tunnel
from repro.dataplane.engine import ForwardingEngine
from repro.mpls.rsvp import TeTunnel
from repro.net.vendors import CISCO
from repro.routing.control import ControlPlane


def build(popping):
    network = Network()
    src = network.add_router("src", asn=1)
    config = MplsConfig.from_vendor(CISCO, ttl_propagate=False)
    ingress = network.add_router("in", asn=2, mpls=config)
    top = network.add_router("top", asn=2, mpls=config)
    bot1 = network.add_router("bot1", asn=2, mpls=config)
    bot2 = network.add_router("bot2", asn=2, mpls=config)
    egress = network.add_router("out", asn=2, mpls=config)
    dst = network.add_router("dst", asn=3)
    network.add_link(src, ingress)
    network.add_link(ingress, top, weight=1)
    network.add_link(top, egress, weight=1)
    network.add_link(ingress, bot1, weight=10)
    network.add_link(bot1, bot2, weight=10)
    network.add_link(bot2, egress, weight=10)
    network.add_link(egress, dst)
    control = ControlPlane(network)
    control.install_te_tunnel(
        TeTunnel(
            name="detour",
            path=("in", "bot1", "bot2", "out"),
            popping=popping,
        )
    )
    engine = ForwardingEngine(network, control)
    return network, engine, src, dst


def main() -> None:
    for popping in (PoppingMode.PHP, PoppingMode.UHP):
        network, engine, src, dst = build(popping)
        prober = Prober(engine)
        print("=" * 64)
        print(f"TE tunnel with {popping.value.upper()} popping")
        print("=" * 64)
        truth = engine.send_probe(src, dst.loopback, ttl=255, flow_id=0)
        print("ground-truth path :", " -> ".join(truth.forward_path))
        trace = prober.traceroute(src, dst.loopback)
        seen = [hop.responder_router for hop in trace.responsive_hops]
        print("traceroute sees   :", " -> ".join(seen))
        ingress_hop = next(
            (h for h in trace.responsive_hops
             if h.responder_router == "in"), None,
        )
        egress_hop = next(
            (h for h in trace.responsive_hops
             if h.responder_router == "out"), None,
        )
        if ingress_hop and egress_hop:
            revelation = reveal_tunnel(
                prober, src, ingress_hop.address, egress_hop.address
            )
            names = [
                network.owner_of(a).name for a in revelation.revealed
            ]
            print(
                f"revelation        : {revelation.method.value}, "
                f"revealed {names or 'nothing'}"
            )
        else:
            print("revelation        : no candidate pair — the egress "
                  "itself is hidden (UHP)")
        print()
    print(
        "Neither popping mode lets the techniques see the TE detour:\n"
        "probes toward the egress ride the IGP/LDP paths, on which the\n"
        "detour's routers never forward — revelation exposes LDP\n"
        "wormholes, not traffic-engineered ones."
    )


if __name__ == "__main__":
    main()
