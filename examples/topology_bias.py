#!/usr/bin/env python3
"""Internet-model bias and its correction (Sec. 7, Figs. 10–11).

Shows how invisible tunnels distort an ITDK-style router-level graph —
inflated node degrees, dense Ingress–Egress meshes, under-counted path
lengths — and how applying the revealed tunnels repairs each metric.

Run:  python examples/topology_bias.py
"""

from repro.analysis.correction import corrected_graph
from repro.analysis.itdk import TraceGraph
from repro.experiments import fig01_degree, fig10_degree, fig11_pathlen
from repro.experiments.common import campaign_context


def main() -> None:
    context = campaign_context()

    print(fig01_degree.run().text)
    print()
    print(fig10_degree.run().text)
    print()
    print(fig11_pathlen.run().text)
    print()

    # Zoom in: the highest-degree node before and after correction.
    graph = TraceGraph(context.alias_of, context.asn_of)
    graph.add_traces(context.result.traces)
    fixed = corrected_graph(
        graph, context.result.revelations.values()
    )
    top = max(graph.nodes(), key=graph.degree)
    print(f"Highest-degree node: {top}")
    print(f"  degree with invisible tunnels: {graph.degree(top)}")
    print(f"  degree after revelation:       {fixed.degree(top)}")
    fake_neighbors = graph.neighbors(top) - fixed.neighbors(top)
    if fake_neighbors:
        print(
            "  false adjacencies removed: "
            + ", ".join(sorted(fake_neighbors))
        )


if __name__ == "__main__":
    main()
