#!/usr/bin/env python3
"""Quickstart: see an invisible MPLS tunnel, then reveal it.

Builds the paper's Fig. 2 testbed in its *Backward Recursive*
configuration (``no-ttl-propagate``: the tunnel is hidden from
traceroute), shows the biased trace, detects the tunnel with FRPLA's
return-TTL side channel, and finally reveals the hidden LSRs with the
combined DPR/BRPR pipeline.

Run:  python examples/quickstart.py
"""

from repro import build_gns3, candidate_endpoints, reveal_tunnel, rfa_of_hop


def main() -> None:
    testbed = build_gns3("backward-recursive")

    print("=" * 64)
    print("Step 1 — traceroute through the MPLS transit AS")
    print("=" * 64)
    trace = testbed.traceroute("CE2.left")
    print(testbed.render(trace))
    print()
    print(
        "PE1 appears directly connected to PE2: the three LSRs "
        "(P1, P2, P3) are hidden.\n"
    )

    print("=" * 64)
    print("Step 2 — the return-TTL side channel (FRPLA)")
    print("=" * 64)
    egress_hop = trace.hop_of(testbed.address("PE2.left"))
    sample = rfa_of_hop(egress_hop)
    print(
        f"PE2 answers at forward hop {sample.forward_length} but its "
        f"reply travelled {sample.return_length} links back:"
    )
    print(
        f"return-vs-forward asymmetry (RFA) = {sample.rfa} "
        "-> an invisible tunnel of about that many hops.\n"
    )

    print("=" * 64)
    print("Step 3 — reveal the hidden hops (DPR/BRPR pipeline)")
    print("=" * 64)
    ingress, egress = candidate_endpoints(trace)
    revelation = reveal_tunnel(
        testbed.prober, testbed.vantage_point, ingress, egress
    )
    names = [testbed.name_of(address) for address in revelation.revealed]
    print(f"method: {revelation.method.value}")
    print(f"revealed LSRs (ingress -> egress): {names}")
    print(
        f"traces used: {revelation.traces_used}, "
        f"probes: {revelation.probes_used}"
    )
    assert names == ["P1.left", "P2.left", "P3.left"]
    print("\nThe wormhole is mapped.")


if __name__ == "__main__":
    main()
