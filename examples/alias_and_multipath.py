#!/usr/bin/env python3
"""Alias resolution and ECMP enumeration on the measured topology.

Two supporting measurements every router-level study needs:

1. **Mercator-style alias resolution** — UDP probes make routers
   answer from their outgoing interface, grouping the addresses that
   traceroute scattered across one box.  Ground truth lets us score
   precision/recall, which real campaigns never can.
2. **ECMP multipath enumeration** — sweeping Paris flow identifiers
   exposes the equal-cost path diversity that footnote 11 and
   Fig. 9a's noise come from.

Run:  python examples/alias_and_multipath.py
"""

from repro.analysis.alias import MercatorResolver, score_against_truth
from repro.experiments.common import campaign_context
from repro.probing.multipath import enumerate_paths


def main() -> None:
    context = campaign_context()
    internet = context.internet
    vp = internet.vps[0]

    print("=" * 64)
    print("Mercator alias resolution over campaign addresses")
    print("=" * 64)
    addresses = set()
    for trace in context.result.traces[:40]:
        addresses.update(trace.addresses)
    resolver = MercatorResolver(
        prober=internet.prober, vantage_point=vp
    )
    sets = resolver.resolve(addresses)
    multi = [group for group in sets.sets() if len(group) > 1]
    print(
        f"{len(addresses)} addresses probed, "
        f"{resolver.aliases_found} alias signals, "
        f"{len(multi)} multi-interface routers inferred"
    )
    precision, recall = score_against_truth(
        sets, internet.network.owner_of, addresses
    )
    print(f"vs ground truth: precision {precision:.2f}, "
          f"recall {recall:.2f}")
    print()

    print("=" * 64)
    print("ECMP diversity from the first vantage point")
    print("=" * 64)
    shown = 0
    for dst in internet.campaign_targets():
        result = enumerate_paths(
            internet.prober, vp, dst, flows=16, start_ttl=2
        )
        if result.path_count > 1:
            shown += 1
            print(
                f"{result.path_count} equal-cost paths toward "
                f"{internet.router_of_address(dst).name} "
                f"({result.probes_used} probes)"
            )
        if shown >= 5:
            break
    if shown == 0:
        print("No ECMP diversity toward the sampled targets "
              "(try another vantage point or seed).")


if __name__ == "__main__":
    main()
