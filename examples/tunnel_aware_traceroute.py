#!/usr/bin/env python3
"""The conclusion's envisioned tool: a tunnel-aware traceroute.

The paper closes by proposing a modified traceroute that uses
FRPLA/RTLA as on-the-fly *triggers* for invisible tunnels and
DPR/BRPR to reveal their content inline (Table 6).  This example runs
:class:`repro.core.revelation.TunnelAwareTraceroute` across the
synthetic Internet and prints the enriched paths next to the plain
ones.

Run:  python examples/tunnel_aware_traceroute.py
"""

from repro import TunnelAwareTraceroute
from repro.experiments.common import campaign_context
from repro.net.addressing import format_address


def main() -> None:
    context = campaign_context()
    internet = context.internet
    tracer = TunnelAwareTraceroute(internet.prober, trigger_threshold=2)
    vp = internet.vps[0]

    shown = 0
    for destination in internet.campaign_targets():
        plain = internet.prober.traceroute(vp, destination, start_ttl=2)
        if not plain.destination_reached:
            continue
        enriched, revelations = tracer.trace(vp, destination)
        if not revelations:
            continue
        shown += 1
        print("=" * 64)
        print(f"target {format_address(destination)}")
        plain_names = [
            internet.router_of_address(a).name for a in plain.addresses
        ]
        enriched_names = [
            internet.router_of_address(a).name for a in enriched
        ]
        print(f"  plain    ({len(plain_names):2d} hops): "
              + " -> ".join(plain_names))
        print(f"  enriched ({len(enriched_names):2d} hops): "
              + " -> ".join(enriched_names))
        for revelation in revelations:
            print(
                f"  trigger fired: revealed {revelation.tunnel_length} "
                f"hidden hop(s) via {revelation.method.value}"
            )
        if shown >= 5:
            break
    if shown == 0:
        print("No invisible tunnels triggered on this seed.")


if __name__ == "__main__":
    main()
