#!/usr/bin/env python
"""Serve soak harness: many tenants, few snapshots, hard invariants.

Drives the :mod:`repro.serve` campaign server the way CI and release
gates need it driven:

1. **Snapshot sharing** — N tenants spread over M topology seeds must
   trigger exactly M ``internet_build`` renders; every other attach is
   a registry hit (asserted from the server's registry stats);
2. **Bit-identity** (``--verify-standalone``) — for one tenant per
   distinct topology, the served result must equal the standalone
   orchestrator's field-by-field: traces, pings, candidate pairs,
   revelations, probe totals, and the measurement-plane counters
   (``measurement_counters``, the execution-invariant namespace);
3. **Graceful drain** (``--sigterm-after``) — a SIGTERM mid-soak must
   cancel only still-queued sessions, let active campaigns finish
   cleanly, and exit 0 with a drain summary (the systemd/k8s stop
   contract);
4. **Fairness sanity** (``--weights``) — with unequal weights the
   scheduler's grant snapshot must order virtual times consistently
   (the fine-grained ratio assertions live in
   ``tests/test_serve_fairness.py``).

Results land in ``--json`` as a single summary document; the combined
tenant-tagged event stream goes to ``--events-out`` with a final
``serve.metrics`` record appended.  Exit status is non-zero when any
invariant fails.

Usage::

    PYTHONPATH=src python tools/serve_soak.py --tenants 8 \
        --snapshots 2 --verify-standalone [--sigterm-after 0.5]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.obs import JsonlSink, measurement_counters  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    TenantSpec,
    TopologySpec,
    run_standalone,
    topology_key,
)


def parse_args(argv=None):
    """The soak harness command line."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument(
        "--snapshots", type=int, default=2,
        help="distinct topology seeds (each rendered once, shared)",
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--vantage-points", type=int, default=3)
    parser.add_argument("--stubs-per-transit", type=int, default=2)
    parser.add_argument("--max-targets", type=int, default=6)
    parser.add_argument("--max-active", type=int, default=4)
    parser.add_argument(
        "--weights", default=None,
        help="comma-separated scheduler weights cycled over tenants",
    )
    parser.add_argument("--probe-budget", type=int, default=None)
    parser.add_argument("--fault-profile", default=None)
    parser.add_argument(
        "--verify-standalone", action="store_true",
        help="assert served results are byte-identical to the "
        "standalone orchestrator (one tenant per distinct topology)",
    )
    parser.add_argument(
        "--sigterm-after", type=float, default=None, metavar="SECONDS",
        help="send SIGTERM to this process after SECONDS and assert "
        "the drain contract (queued cancelled, active finish, exit 0)",
    )
    parser.add_argument(
        "--sigterm-after-completed", type=int, default=None,
        metavar="K",
        help="deterministic drain trigger: SIGTERM once K sessions "
        "have completed (race-free flavour of --sigterm-after for CI)",
    )
    parser.add_argument("--events-out", default=None)
    parser.add_argument("--json", default=None)
    return parser.parse_args(argv)


def tenant_specs(args):
    """The soak's tenant fleet, spread round-robin over snapshots."""
    weights = [1.0] * args.tenants
    if args.weights:
        cycle = [float(w) for w in args.weights.split(",")]
        weights = [cycle[i % len(cycle)] for i in range(args.tenants)]
    specs = []
    for index in range(args.tenants):
        specs.append(
            TenantSpec(
                tenant=f"soak-{index:02d}",
                topology=TopologySpec(
                    scale=args.scale,
                    seed=args.seed + index % args.snapshots,
                    vantage_points=args.vantage_points,
                    stubs_per_transit=args.stubs_per_transit,
                ),
                weight=weights[index],
                probe_budget=args.probe_budget,
                fault_profile=args.fault_profile,
                max_targets=args.max_targets,
            )
        )
    return specs


def result_fingerprint(result, counters):
    """The comparable shape of a campaign outcome."""
    return {
        "traces": result.traces,
        "pings": result.pings,
        "pairs": result.pairs,
        "revelations": result.revelations,
        "probes_sent": result.probes_sent,
        "partial": result.partial,
        "counters": measurement_counters(counters),
    }


def verify_standalone(handles, failures):
    """Bit-identity check: one served tenant per distinct topology."""
    seen = set()
    verified = 0
    for handle in handles:
        session = handle.session
        if session.status != "done" or session.result is None:
            continue
        key = topology_key(handle.spec.topology)
        if key in seen:
            continue
        seen.add(key)
        expected, metrics = run_standalone(handle.spec)
        served = result_fingerprint(
            session.result, session.metrics.counters_snapshot()
        )
        standalone = result_fingerprint(
            expected, metrics.counters_snapshot()
        )
        for field in served:
            if served[field] != standalone[field]:
                failures.append(
                    f"{handle.spec.tenant}: served {field} diverges "
                    "from the standalone orchestrator"
                )
        verified += 1
    return verified


def main(argv=None):
    """Run the soak; returns the process exit code."""
    args = parse_args(argv)
    failures = []
    sink = JsonlSink(args.events_out) if args.events_out else None
    client = ServeClient(
        max_active=args.max_active, stream_sink=sink
    )
    drained = {"requested": False}
    timer = None
    want_drain = (
        args.sigterm_after is not None
        or args.sigterm_after_completed is not None
    )
    if want_drain:
        def on_sigterm(_signum, _frame):
            drained["requested"] = True
            client.request_drain(cancel_queued=True)

        signal.signal(signal.SIGTERM, on_sigterm)
    if args.sigterm_after is not None:
        timer = threading.Timer(
            args.sigterm_after,
            lambda: os.kill(os.getpid(), signal.SIGTERM),
        )
        timer.start()

    handles = [client.submit(spec) for spec in tenant_specs(args)]
    completed, cancelled = 0, 0
    for handle in handles:
        try:
            handle.wait(timeout=600)
            completed += 1
        except BaseException as exc:
            if handle.status == "cancelled":
                cancelled += 1
            else:
                failures.append(
                    f"{handle.spec.tenant}: {handle.status}: {exc!r}"
                )
        if (
            args.sigterm_after_completed is not None
            and completed == args.sigterm_after_completed
            and not drained["requested"]
        ):
            # Delivered synchronously: CPython runs the handler in
            # the main thread before the next wait.
            os.kill(os.getpid(), signal.SIGTERM)
    if timer is not None:
        timer.cancel()

    stats = client.stats()
    registry = stats["registry"]
    distinct = len({
        topology_key(handle.spec.topology) for handle in handles
    })
    started = {
        handle for handle in handles if handle.status != "cancelled"
    }
    started_keys = len({
        topology_key(handle.spec.topology) for handle in started
    })
    if registry["renders"] > distinct:
        failures.append(
            f"registry rendered {registry['renders']} topologies for "
            f"{distinct} distinct keys (sharing is broken)"
        )
    if registry["renders"] < started_keys:
        failures.append(
            f"registry rendered {registry['renders']} topologies but "
            f"{started_keys} keys actually ran"
        )
    expected_attaches = len(started)
    if registry["attaches"] != expected_attaches:
        failures.append(
            f"registry saw {registry['attaches']} attaches for "
            f"{expected_attaches} started sessions"
        )
    if drained["requested"]:
        if not stats["draining"]:
            failures.append("SIGTERM did not put the server in drain")
        if completed + cancelled != len(handles):
            failures.append(
                f"drain lost sessions: {completed} completed + "
                f"{cancelled} cancelled != {len(handles)}"
            )
    elif completed != len(handles):
        failures.append(
            f"only {completed}/{len(handles)} sessions completed"
        )

    verified = 0
    if args.verify_standalone:
        verified = verify_standalone(handles, failures)
        if verified == 0:
            failures.append("verify-standalone had nothing to verify")

    summary = {
        "tenants": len(handles),
        "completed": completed,
        "cancelled": cancelled,
        "drain_requested": drained["requested"],
        "verified_standalone": verified,
        "registry": registry,
        "scheduler": stats["scheduler"],
        "failures": failures,
    }
    if sink is not None:
        sink.write({"kind": "serve.metrics", "summary": summary})
    client.close()
    if sink is not None:
        sink.close()

    print(
        f"serve soak: {completed} completed, {cancelled} cancelled, "
        f"{registry['renders']} renders for {distinct} keys, "
        f"{registry['builds_avoided']} builds avoided, "
        f"{verified} verified vs standalone"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1, default=str)
        print(f"summary written to {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
