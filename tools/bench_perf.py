#!/usr/bin/env python3
"""Run the simulator perf benches and write ``BENCH_perf.json``.

Executes ``benchmarks/test_simulator_performance.py`` under
pytest-benchmark, collects ops/sec and mean latency per bench, adds
trajectory-cache effectiveness from a warm campaign replay, and writes
the combined snapshot to ``BENCH_perf.json`` at the repository root —
the checked-in perf trajectory for this repo.

Usage::

    PYTHONPATH=src python tools/bench_perf.py [output.json]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_benches() -> dict:
    """Run the pytest benches; return name -> {ops_per_sec, mean_us}."""
    with tempfile.NamedTemporaryFile(
        suffix=".json", delete=False
    ) as handle:
        json_path = Path(handle.name)
    try:
        subprocess.run(
            [
                sys.executable, "-m", "pytest",
                "benchmarks/test_simulator_performance.py",
                "--benchmark-only", "-q",
                f"--benchmark-json={json_path}",
            ],
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
        )
        payload = json.loads(json_path.read_text())
    finally:
        json_path.unlink(missing_ok=True)
    benches = {}
    for bench in payload["benchmarks"]:
        stats = bench["stats"]
        benches[bench["name"]] = {
            "ops_per_sec": round(stats["ops"], 2),
            "mean_us": round(stats["mean"] * 1e6, 3),
        }
    return benches


def cache_stats() -> dict:
    """Trajectory-cache counters from a warm campaign replay.

    Runs with two prewarm workers so the snapshot reflects the
    parallel configuration, and merges the worker-side counters
    (re-exported under ``prewarm.engine.*`` in the parent registry)
    into the totals — the engine's own counters only see the parent
    process, so without the merge a multi-worker run reports an
    inflated hit rate (the workers' cold misses happen off-process
    while their trajectories replay in the parent as pure hits).
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.campaign.orchestrator import Campaign, CampaignConfig
    from repro.synth.internet import InternetConfig, build_internet

    internet = build_internet(InternetConfig(seed=77))
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(workers=2),
    )
    campaign.run(internet.campaign_targets())
    stats = internet.engine.cache_stats()
    metrics = internet.prober.obs.metrics
    prewarm_hits = metrics.get("prewarm.engine.trajectory_hits")
    prewarm_misses = metrics.get("prewarm.engine.trajectory_misses")
    hits = stats["trajectory_hits"] + prewarm_hits
    misses = stats["trajectory_misses"] + prewarm_misses
    total = hits + misses
    stats.update(
        trajectory_hits=hits,
        trajectory_misses=misses,
        hit_rate=round(hits / total, 4) if total else 0.0,
        prewarm_worker_hits=prewarm_hits,
        prewarm_worker_misses=prewarm_misses,
    )
    return stats


def resume_stats() -> dict:
    """Resumed-vs-cold campaign timing (checkpoint warehouse).

    Runs the seeded campaign cold, then interrupts a checkpointed
    twin halfway through its probe budget and resumes it; the resumed
    leg replays the persisted prefix instead of re-probing, so its
    wall-clock (and simulated packet count) quantifies what a
    checkpoint is worth operationally.
    """
    import shutil
    import tempfile
    import time

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.campaign.orchestrator import Campaign, CampaignConfig
    from repro.store import CampaignCheckpoint
    from repro.synth.internet import InternetConfig, build_internet

    def build(budget=None):
        internet = build_internet(InternetConfig(seed=77))
        return internet, Campaign(
            internet.prober,
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(internet.transit_asns),
                probe_budget=budget,
            ),
        )

    topology = {"kind": "synthetic-internet", "seed": 77}
    internet, campaign = build()
    start = time.perf_counter()
    cold = campaign.run(internet.campaign_targets())
    cold_seconds = time.perf_counter() - start
    total_probes = cold.probes_sent + cold.revelation_probes

    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        internet, campaign = build(budget=total_probes // 2)
        campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(root, topology),
        )
        internet, campaign = build()
        start = time.perf_counter()
        resumed = campaign.run(
            internet.campaign_targets(),
            checkpoint=CampaignCheckpoint(root, topology, resume=True),
        )
        resumed_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cold_seconds": round(cold_seconds, 4),
        "resumed_seconds": round(resumed_seconds, 4),
        "resumed_speedup": round(
            cold_seconds / resumed_seconds, 2
        ) if resumed_seconds else None,
        "total_probes": total_probes,
        "resumed_packets_simulated": resumed.perf.packets_simulated,
        "cold_packets_simulated": cold.perf.packets_simulated,
        "bit_identical": resumed.traces == cold.traces
        and resumed.revelations == cold.revelations,
    }


def monitor_stats() -> dict:
    """Incremental monitoring epochs vs full re-campaigns.

    Runs the same 3-epoch churned monitor chain twice — once with the
    staleness engine carrying unchanged pairs forward, once re-running
    full revelation every epoch — and reports the probe/wall-clock
    saving.  ``tunnels_identical`` asserts the incremental-safety
    contract: every epoch's merged tunnel inventory must be
    byte-identical to the full re-campaign's (also pinned by test).
    """
    import shutil
    import tempfile
    import time

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.monitor import MonitorConfig, MonitorLoop
    from repro.store import chain_snapshots, snapshot_tunnels

    def run(incremental):
        root = tempfile.mkdtemp(prefix="bench-monitor-")
        try:
            start = time.perf_counter()
            loop = MonitorLoop(
                MonitorConfig(
                    warehouse=root,
                    epochs=3,
                    churn_profile="steady",
                    incremental=incremental,
                )
            )
            report = loop.run()
            seconds = time.perf_counter() - start
            chain = chain_snapshots(root, chain=report.chain)
            inventories = [
                json.dumps(snapshot_tunnels(snapshot), sort_keys=True)
                for snapshot in chain[report.chain]
            ]
        finally:
            shutil.rmtree(root, ignore_errors=True)
        return report, inventories, seconds

    incremental, inc_inventories, inc_seconds = run(True)
    full, full_inventories, full_seconds = run(False)
    inc_campaign = sum(
        outcome.campaign_probes for outcome in incremental.epochs
    )
    inc_evidence = sum(
        outcome.evidence_probes for outcome in incremental.epochs
    )
    full_campaign = sum(
        outcome.campaign_probes for outcome in full.epochs
    )
    inc_total = inc_campaign + inc_evidence
    return {
        "epochs": len(incremental.epochs),
        "pairs_carried": sum(
            outcome.pairs_carried for outcome in incremental.epochs
        ),
        "incremental_campaign_probes": inc_campaign,
        "incremental_evidence_probes": inc_evidence,
        "incremental_probes": inc_total,
        "full_probes": full_campaign,
        "probe_ratio": round(inc_total / full_campaign, 4)
        if full_campaign else None,
        "incremental_seconds": round(inc_seconds, 4),
        "full_seconds": round(full_seconds, 4),
        "tunnels_identical": inc_inventories == full_inventories,
    }


def serve_stats() -> dict:
    """Multi-tenant serve throughput over shared snapshots.

    Runs eight tenant campaigns over two rendered topologies through
    the campaign server and reports fleet throughput plus the
    snapshot-sharing ledger; ``bit_identical`` asserts the serve
    determinism contract (a served single-tenant run equals the
    standalone orchestrator, measurement counters included).
    """
    import time

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import measurement_counters
    from repro.serve import (
        ServeClient,
        SnapshotRegistry,
        TenantSpec,
        TopologySpec,
        run_standalone,
    )

    specs = [
        TenantSpec(
            tenant=f"bench-{index}",
            topology=TopologySpec(
                scale=0.3,
                seed=11 + index % 2,
                vantage_points=3,
                stubs_per_transit=2,
            ),
            max_targets=4,
        )
        for index in range(8)
    ]
    registry = SnapshotRegistry()
    client = ServeClient(registry=registry, max_active=4)
    try:
        start = time.perf_counter()
        handles = [client.submit(spec) for spec in specs]
        results = [handle.wait(timeout=600) for handle in handles]
        seconds = time.perf_counter() - start
        probe = handles[0]
        served = (
            results[0].traces,
            results[0].revelations,
            measurement_counters(
                probe.session.metrics.counters_snapshot()
            ),
        )
    finally:
        client.close()
    expected, metrics = run_standalone(specs[0])
    standalone = (
        expected.traces,
        expected.revelations,
        measurement_counters(metrics.counters_snapshot()),
    )
    reuse = registry.stats()
    probes = sum(result.probes_sent for result in results)
    return {
        "tenants": len(specs),
        "snapshots": reuse["renders"],
        "builds_avoided": reuse["builds_avoided"],
        "fleet_seconds": round(seconds, 4),
        "campaigns_per_sec": round(len(specs) / seconds, 2),
        "probes_per_sec": round(probes / seconds, 1),
        "bit_identical": served == standalone,
    }


def fleet_stats() -> dict:
    """Fleet throughput plus crash-recovery overhead.

    Runs a 2-chain monitoring fleet clean, then again with every
    chain hard-killed mid-epoch and restarted from checkpoints, and
    reports both legs: ``fleet_throughput`` quantifies concurrent
    chains over one shared render, ``fleet_recovery`` the cost of a
    full crash storm.  ``doc_identical`` asserts the fleet recovery
    contract (the crashed fleet's ``repro.fleet/1`` aggregate is
    byte-identical to the unfailed one's — also pinned by test).
    """
    import shutil
    import tempfile
    import time

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.fleet import FleetConfig, FleetSupervisor

    def run(kill_plan=None):
        root = tempfile.mkdtemp(prefix="bench-fleet-")
        supervisor = FleetSupervisor(
            FleetConfig(
                warehouse=root,
                chains=2,
                epochs=2,
                vantage_points=3,
                stubs_per_transit=2,
                churn_profile="steady",
                backoff_base_ms=0.5,
            ),
            kill_plan=kill_plan,
        )
        start = time.perf_counter()
        report = supervisor.run()
        seconds = time.perf_counter() - start
        document = (Path(root) / "fleet.json").read_bytes()
        shutil.rmtree(root, ignore_errors=True)
        return report, supervisor, seconds, document

    clean, clean_sup, clean_seconds, clean_doc = run()
    kill_plan = {0: 90, 1: 250}
    crashed, crash_sup, crashed_seconds, crashed_doc = run(kill_plan)
    epochs = sum(c.epochs_completed for c in clean.chains)
    reuse = clean_sup.registry.stats()
    throughput = {
        "chains": len(clean.chains),
        "epochs": epochs,
        "fleet_seconds": round(clean_seconds, 4),
        "epochs_per_sec": round(epochs / clean_seconds, 2)
        if clean_seconds else None,
        "renders": reuse["renders"],
        "checkouts": reuse["checkouts"],
        "builds_avoided": reuse["builds_avoided"],
        "grade": clean.document["summary"]["grade"],
    }
    recovery = {
        "kills": sum(c.injected_kills for c in crashed.chains),
        "restarts": sum(c.restarts for c in crashed.chains),
        "clean_seconds": round(clean_seconds, 4),
        "crashed_seconds": round(crashed_seconds, 4),
        "recovery_overhead": round(
            crashed_seconds / clean_seconds, 2
        ) if clean_seconds else None,
        "checkouts": crash_sup.registry.stats()["checkouts"],
        "doc_identical": crashed_doc == clean_doc,
    }
    return {"throughput": throughput, "recovery": recovery}


def main() -> int:
    """Run everything and write the JSON snapshot."""
    output = Path(
        sys.argv[1] if len(sys.argv) > 1 else REPO_ROOT / "BENCH_perf.json"
    )
    snapshot = {
        "benches": run_benches(),
        "campaign_cache": cache_stats(),
        "campaign_resume": resume_stats(),
        "serve_throughput": serve_stats(),
        "monitor_incremental_speedup": monitor_stats(),
    }
    fleet = fleet_stats()
    snapshot["fleet_throughput"] = fleet["throughput"]
    snapshot["fleet_recovery"] = fleet["recovery"]
    benches = snapshot["benches"]
    cached = benches.get("test_perf_full_traceroute")
    uncached = benches.get("test_perf_full_traceroute_uncached")
    if cached and uncached and cached["mean_us"]:
        snapshot["traceroute_speedup"] = round(
            uncached["mean_us"] / cached["mean_us"], 2
        )
    compiled_speedup = {}
    for name, base_name, compiled_name in (
        ("traceroute", "test_perf_full_traceroute_uncached",
         "test_perf_full_traceroute_compiled"),
        ("cold_routing", "test_perf_cold_vs_warm_routing",
         "test_perf_cold_routing_compiled"),
    ):
        base = benches.get(base_name)
        compiled = benches.get(compiled_name)
        if base and compiled and compiled["mean_us"]:
            compiled_speedup[name] = round(
                base["mean_us"] / compiled["mean_us"], 2
            )
    if compiled_speedup:
        snapshot["compiled_speedup"] = compiled_speedup
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
