#!/usr/bin/env python3
"""Fail CI when a perf bench regresses past the committed baseline.

Compares a fresh pytest-benchmark JSON export against the means
recorded in the checked-in ``BENCH_perf.json`` snapshot.  A bench
whose fresh mean exceeds the committed mean by more than the
tolerance fails the run; benches missing on either side are reported
but do not fail (CI machines differ, new benches have no baseline
yet).

Usage::

    python tools/bench_guard.py bench-perf.json \
        [--baseline BENCH_perf.json] [--tolerance 0.25] \
        [--bench test_perf_full_traceroute_uncached ...]
    python tools/bench_guard.py --monitor
    python tools/bench_guard.py --fleet

By default the scalar traceroute hot path and the RSVP-TE steering
path are guarded; pass ``--bench`` to guard more.  ``--monitor``
validates the committed ``monitor_incremental_speedup`` section
instead of (or in addition to) the bench means, and ``--fleet`` the
committed ``fleet_throughput``/``fleet_recovery`` sections (shared
render, crash-recovery byte-identity, sane recovery overhead).
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benches guarded when ``--bench`` is not given: the scalar hot path
#: every other bench builds on, and the RSVP-TE steering path layered
#: on top of it.
DEFAULT_BENCHES = (
    "test_perf_full_traceroute_uncached",
    "test_perf_full_traceroute_te",
)


def check_monitor(section) -> list:
    """Validate the ``monitor_incremental_speedup`` invariants.

    The committed section must show the incremental path actually
    carrying pairs, spending fewer probes than the full arm, and —
    the safety contract — producing byte-identical tunnel
    inventories.  Returns failure strings (empty = ok).
    """
    if not isinstance(section, dict):
        return ["no monitor_incremental_speedup section in baseline"]
    failures = []
    if not section.get("tunnels_identical"):
        failures.append(
            "tunnels_identical is false: incremental epochs diverged "
            "from full re-campaigns"
        )
    if not section.get("pairs_carried"):
        failures.append("pairs_carried is 0: nothing was skipped")
    ratio = section.get("probe_ratio")
    if ratio is None or ratio >= 1.0:
        failures.append(
            f"probe_ratio {ratio!r} is not < 1.0: no probe saving"
        )
    if not failures:
        print(
            "  ok monitor_incremental_speedup: "
            f"{section.get('pairs_carried')} pairs carried, "
            f"probe ratio {ratio}, inventories identical"
        )
    return failures


def check_fleet(throughput, recovery) -> list:
    """Validate the committed fleet bench sections.

    ``fleet_throughput`` must show one shared render feeding every
    chain checkout; ``fleet_recovery`` must show the crash storm
    actually killing and restarting chains while the folded document
    stays byte-identical, at a recovery overhead that is a
    multiplier, not an explosion.  Returns failure strings.
    """
    failures = []
    if not isinstance(throughput, dict):
        failures.append("no fleet_throughput section in baseline")
        throughput = {}
    if not isinstance(recovery, dict):
        failures.append("no fleet_recovery section in baseline")
        recovery = {}
    if throughput:
        if throughput.get("renders") != 1:
            failures.append(
                f"fleet rendered {throughput.get('renders')!r} "
                "internets; the shared-render contract is exactly 1"
            )
        if (throughput.get("checkouts") or 0) < (
            throughput.get("chains") or 0
        ):
            failures.append(
                "fewer checkouts than chains: copy-on-churn twins "
                "are not per-chain"
            )
        if throughput.get("grade") != "high":
            failures.append(
                f"clean fleet graded {throughput.get('grade')!r}, "
                "expected 'high'"
            )
    if recovery:
        if not recovery.get("doc_identical"):
            failures.append(
                "doc_identical is false: the crashed fleet's "
                "aggregate diverged from the unfailed fleet's"
            )
        if not recovery.get("restarts"):
            failures.append(
                "restarts is 0: the crash storm never restarted "
                "anything"
            )
        overhead = recovery.get("recovery_overhead")
        if overhead is None or overhead > 6.0:
            failures.append(
                f"recovery_overhead {overhead!r} is not a sane "
                "multiplier (expected <= 6.0)"
            )
    if not failures:
        print(
            "  ok fleet: 1 render / "
            f"{throughput.get('checkouts')} checkouts, "
            f"{recovery.get('restarts')} restarts recovered at "
            f"{recovery.get('recovery_overhead')}x, aggregate "
            "byte-identical"
        )
    return failures


def fresh_means(payload: dict) -> dict:
    """name -> mean microseconds from a pytest-benchmark export."""
    return {
        bench["name"]: bench["stats"]["mean"] * 1e6
        for bench in payload.get("benchmarks", ())
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "results", type=Path, nargs="?",
        help="fresh pytest-benchmark JSON export (optional with "
        "--monitor)",
    )
    parser.add_argument(
        "--baseline", type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="committed snapshot to compare against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (0.25 = 25%%)",
    )
    parser.add_argument(
        "--bench", action="append", default=None,
        help="bench name to guard (repeatable); defaults to the "
        "scalar traceroute hot path",
    )
    parser.add_argument(
        "--monitor", action="store_true",
        help="also validate the committed "
        "monitor_incremental_speedup section (carried pairs, probe "
        "saving, inventory identity)",
    )
    parser.add_argument(
        "--fleet", action="store_true",
        help="also validate the committed fleet_throughput/"
        "fleet_recovery sections (shared render, crash-recovery "
        "byte-identity, sane overhead)",
    )
    args = parser.parse_args(argv)

    snapshot = json.loads(args.baseline.read_text())
    if args.monitor:
        failures = check_monitor(
            snapshot.get("monitor_incremental_speedup")
        )
        if failures:
            print(
                "monitor guard: " + "; ".join(failures)
            )
            return 1
    if args.fleet:
        failures = check_fleet(
            snapshot.get("fleet_throughput"),
            snapshot.get("fleet_recovery"),
        )
        if failures:
            print("fleet guard: " + "; ".join(failures))
            return 1
    if args.results is None:
        if args.monitor or args.fleet:
            return 0
        parser.error("results export required unless --monitor/--fleet")

    baseline = snapshot.get("benches", {})
    means = fresh_means(json.loads(args.results.read_text()))
    guarded = args.bench or list(DEFAULT_BENCHES)

    failures = []
    for name in guarded:
        base = baseline.get(name, {}).get("mean_us")
        mean = means.get(name)
        if base is None or mean is None:
            print(f"SKIP {name}: no {'baseline' if base is None else 'fresh'} mean")
            continue
        limit = base * (1.0 + args.tolerance)
        verdict = "FAIL" if mean > limit else "ok"
        print(
            f"{verdict:>4} {name}: mean {mean:.2f}us vs baseline "
            f"{base:.2f}us (limit {limit:.2f}us)"
        )
        if mean > limit:
            failures.append(name)

    if failures:
        print(
            f"perf guard: {len(failures)} bench(es) regressed more "
            f"than {args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
