#!/usr/bin/env python3
"""Fail CI when a perf bench regresses past the committed baseline.

Compares a fresh pytest-benchmark JSON export against the means
recorded in the checked-in ``BENCH_perf.json`` snapshot.  A bench
whose fresh mean exceeds the committed mean by more than the
tolerance fails the run; benches missing on either side are reported
but do not fail (CI machines differ, new benches have no baseline
yet).

Usage::

    python tools/bench_guard.py bench-perf.json \
        [--baseline BENCH_perf.json] [--tolerance 0.25] \
        [--bench test_perf_full_traceroute_uncached ...]
    python tools/bench_guard.py --monitor

By default the scalar traceroute hot path and the RSVP-TE steering
path are guarded; pass ``--bench`` to guard more.  ``--monitor``
validates the committed ``monitor_incremental_speedup`` section
instead of (or in addition to) the bench means.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benches guarded when ``--bench`` is not given: the scalar hot path
#: every other bench builds on, and the RSVP-TE steering path layered
#: on top of it.
DEFAULT_BENCHES = (
    "test_perf_full_traceroute_uncached",
    "test_perf_full_traceroute_te",
)


def check_monitor(section) -> list:
    """Validate the ``monitor_incremental_speedup`` invariants.

    The committed section must show the incremental path actually
    carrying pairs, spending fewer probes than the full arm, and —
    the safety contract — producing byte-identical tunnel
    inventories.  Returns failure strings (empty = ok).
    """
    if not isinstance(section, dict):
        return ["no monitor_incremental_speedup section in baseline"]
    failures = []
    if not section.get("tunnels_identical"):
        failures.append(
            "tunnels_identical is false: incremental epochs diverged "
            "from full re-campaigns"
        )
    if not section.get("pairs_carried"):
        failures.append("pairs_carried is 0: nothing was skipped")
    ratio = section.get("probe_ratio")
    if ratio is None or ratio >= 1.0:
        failures.append(
            f"probe_ratio {ratio!r} is not < 1.0: no probe saving"
        )
    if not failures:
        print(
            "  ok monitor_incremental_speedup: "
            f"{section.get('pairs_carried')} pairs carried, "
            f"probe ratio {ratio}, inventories identical"
        )
    return failures


def fresh_means(payload: dict) -> dict:
    """name -> mean microseconds from a pytest-benchmark export."""
    return {
        bench["name"]: bench["stats"]["mean"] * 1e6
        for bench in payload.get("benchmarks", ())
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "results", type=Path, nargs="?",
        help="fresh pytest-benchmark JSON export (optional with "
        "--monitor)",
    )
    parser.add_argument(
        "--baseline", type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="committed snapshot to compare against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (0.25 = 25%%)",
    )
    parser.add_argument(
        "--bench", action="append", default=None,
        help="bench name to guard (repeatable); defaults to the "
        "scalar traceroute hot path",
    )
    parser.add_argument(
        "--monitor", action="store_true",
        help="also validate the committed "
        "monitor_incremental_speedup section (carried pairs, probe "
        "saving, inventory identity)",
    )
    args = parser.parse_args(argv)

    snapshot = json.loads(args.baseline.read_text())
    if args.monitor:
        failures = check_monitor(
            snapshot.get("monitor_incremental_speedup")
        )
        if failures:
            print(
                "monitor guard: " + "; ".join(failures)
            )
            return 1
        if args.results is None:
            return 0
    if args.results is None:
        parser.error("results export required unless --monitor")

    baseline = snapshot.get("benches", {})
    means = fresh_means(json.loads(args.results.read_text()))
    guarded = args.bench or list(DEFAULT_BENCHES)

    failures = []
    for name in guarded:
        base = baseline.get(name, {}).get("mean_us")
        mean = means.get(name)
        if base is None or mean is None:
            print(f"SKIP {name}: no {'baseline' if base is None else 'fresh'} mean")
            continue
        limit = base * (1.0 + args.tolerance)
        verdict = "FAIL" if mean > limit else "ok"
        print(
            f"{verdict:>4} {name}: mean {mean:.2f}us vs baseline "
            f"{base:.2f}us (limit {limit:.2f}us)"
        )
        if mean > limit:
            failures.append(name)

    if failures:
        print(
            f"perf guard: {len(failures)} bench(es) regressed more "
            f"than {args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
