#!/usr/bin/env python3
"""Fail CI when a perf bench regresses past the committed baseline.

Compares a fresh pytest-benchmark JSON export against the means
recorded in the checked-in ``BENCH_perf.json`` snapshot.  A bench
whose fresh mean exceeds the committed mean by more than the
tolerance fails the run; benches missing on either side are reported
but do not fail (CI machines differ, new benches have no baseline
yet).

Usage::

    python tools/bench_guard.py bench-perf.json \
        [--baseline BENCH_perf.json] [--tolerance 0.25] \
        [--bench test_perf_full_traceroute_uncached ...]

By default the scalar traceroute hot path and the RSVP-TE steering
path are guarded; pass ``--bench`` to guard more.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benches guarded when ``--bench`` is not given: the scalar hot path
#: every other bench builds on, and the RSVP-TE steering path layered
#: on top of it.
DEFAULT_BENCHES = (
    "test_perf_full_traceroute_uncached",
    "test_perf_full_traceroute_te",
)


def fresh_means(payload: dict) -> dict:
    """name -> mean microseconds from a pytest-benchmark export."""
    return {
        bench["name"]: bench["stats"]["mean"] * 1e6
        for bench in payload.get("benchmarks", ())
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "results", type=Path,
        help="fresh pytest-benchmark JSON export",
    )
    parser.add_argument(
        "--baseline", type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="committed snapshot to compare against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (0.25 = 25%%)",
    )
    parser.add_argument(
        "--bench", action="append", default=None,
        help="bench name to guard (repeatable); defaults to the "
        "scalar traceroute hot path",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text()).get("benches", {})
    means = fresh_means(json.loads(args.results.read_text()))
    guarded = args.bench or list(DEFAULT_BENCHES)

    failures = []
    for name in guarded:
        base = baseline.get(name, {}).get("mean_us")
        mean = means.get(name)
        if base is None or mean is None:
            print(f"SKIP {name}: no {'baseline' if base is None else 'fresh'} mean")
            continue
        limit = base * (1.0 + args.tolerance)
        verdict = "FAIL" if mean > limit else "ok"
        print(
            f"{verdict:>4} {name}: mean {mean:.2f}us vs baseline "
            f"{base:.2f}us (limit {limit:.2f}us)"
        )
        if mean > limit:
            failures.append(name)

    if failures:
        print(
            f"perf guard: {len(failures)} bench(es) regressed more "
            f"than {args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
