#!/usr/bin/env python3
"""Render a monitoring timeline (``repro monitor --json``).

Reads a ``repro.monitor/1`` timeline document and prints an
operator-oriented digest: the chain's epoch table (tunnels, carried
pairs, probe spend, churn events), every pair's lifecycle
(born/died/resized/technique-changed), and the per-AS churn-rate
rollup.  Pointed at a warehouse directory instead, it discovers the
monitor chains stamped into the snapshot manifests and digests each
epoch's ``monitor.json`` sidecar — no timeline export needed.  A
fleet warehouse's ``fleet.json`` aggregate is summarised up front;
epochs that crashed or were parked mid-run are flagged as in-flight
(resumable) rather than rendered as zero-tunnel rows.
Self-contained on purpose: it only needs the files, not the ``repro``
package, so it can run anywhere the artefact lands (CI, a laptop, a
jump host).

Usage::

    python tools/timeline_inspect.py timeline.json
    python tools/timeline_inspect.py WAREHOUSE_DIR
"""

import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Lifecycle event kinds a ``repro.monitor/1`` document may carry.
EVENT_KINDS = ("born", "died", "resized", "technique-changed")


def load_json(path: str) -> Optional[dict]:
    """One JSON document; None when missing, corrupt, or not a dict."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None


def render_timeline(document: dict) -> str:
    """A ``repro.monitor/1`` timeline document as readable text."""
    chain = document.get("chain") or {}
    summary = document.get("summary") or {}
    lines = ["# Monitor timeline", ""]
    lines.append(f"  chain          {chain.get('id')}")
    lines.append(f"  churn profile  {chain.get('churn_profile')}")
    lines.append(f"  epochs         {chain.get('epochs')}")
    lines.append("")

    lines.append("## Epochs")
    lines.append(
        "  epoch  tunnels  pairs  carried  stale  probes  churn"
    )
    total_probes = 0
    total_carried = 0
    for head in document.get("epochs") or []:
        probes = int(head.get("probes_sent") or 0)
        carried = int(head.get("pairs_carried") or 0)
        total_probes += probes
        total_carried += carried
        epoch = head.get("epoch")
        lines.append(
            f"  {epoch if epoch is not None else '?':>5}"
            f"  {head.get('tunnels') or 0:>7}"
            f"  {head.get('pairs') or 0:>5}"
            f"  {carried:>7}"
            f"  {head.get('pairs_stale') or 0:>5}"
            f"  {probes:>6}"
            f"  {len(head.get('churn_events') or []):>5}"
            + ("  [partial]" if head.get("partial") else "")
        )
    lines.append(
        f"  total campaign probes: {total_probes} "
        f"({total_carried} pair revelations carried forward)"
    )
    lines.append("")

    lines.append("## Lifecycle summary")
    lines.append(
        f"  pairs tracked  {summary.get('pairs_tracked', 0)} "
        f"(stable {summary.get('stable_pairs', 0)})"
    )
    for kind in ("born", "died", "resized", "technique_changed"):
        lines.append(f"  {kind:<18s} {summary.get(kind, 0)}")
    lines.append("")

    eventful = [
        entry
        for entry in document.get("pairs") or []
        if entry.get("events")
    ]
    if eventful:
        lines.append("## Lifecycles")
        for entry in eventful:
            history = "; ".join(
                describe_event(event) for event in entry["events"]
            )
            lines.append(
                f"  {entry.get('ingress')}->{entry.get('egress')} "
                f"(AS{entry.get('asn')}): {history}"
            )
        lines.append("")

    per_as = document.get("per_as") or []
    if per_as:
        lines.append("## Per-AS churn rate (events / epoch)")
        for row in sorted(
            per_as,
            key=lambda row: (-row.get("churn_rate", 0), row["asn"]),
        ):
            lines.append(
                f"  AS{row['asn']:<6} rate "
                f"{row.get('churn_rate', 0):>6.2f}  "
                f"({row.get('lifecycle_events', 0)} events over "
                f"{row.get('pairs_seen', 0)} pairs)"
            )
        lines.append("")
    return "\n".join(lines)


def describe_event(event: dict) -> str:
    """One lifecycle event as compact text (``e3 resized 4->6``)."""
    kind = event.get("event")
    text = f"e{event.get('epoch')} {kind}"
    if kind == "resized":
        text += f" {event.get('from')}->{event.get('to')}"
    elif kind == "technique-changed":
        before = "/".join(str(part) for part in event.get("from") or [])
        after = "/".join(str(part) for part in event.get("to") or [])
        text += f" {before}->{after}"
    return text


def find_chains(
    root: str,
) -> List[Tuple[str, List[Tuple[int, str]]]]:
    """Monitor chains in a warehouse: ``(chain, [(epoch, path)])``.

    Chains are recognised by the ``monitor`` stamp ``repro monitor``
    writes into each snapshot manifest's topology fingerprint.
    """
    chains: Dict[str, List[Tuple[int, str]]] = {}
    try:
        children = sorted(os.listdir(root))
    except OSError:
        return []
    for child in children:
        path = os.path.join(root, child)
        manifest = load_json(os.path.join(path, "MANIFEST.json"))
        if manifest is None:
            continue
        fingerprint = manifest.get("fingerprint") or {}
        topology = fingerprint.get("topology") or {}
        stamp = topology.get("monitor")
        if not isinstance(stamp, dict):
            continue
        chains.setdefault(str(stamp.get("chain")), []).append(
            (int(stamp.get("epoch") or 0), path)
        )
    return [
        (chain, sorted(members))
        for chain, members in sorted(chains.items())
    ]


def epoch_completed(path: str) -> bool:
    """Did the epoch at ``path`` run to completion?

    Same criterion the monitor loop and fleet fold use: a completed
    ``run.json`` *and* a written ``result.json``.  A crash between
    the two (or mid-epoch) leaves a resumable, not-yet-complete
    epoch whose checkpoint records must not be read as results.
    """
    run = load_json(os.path.join(path, "run.json")) or {}
    result = load_json(os.path.join(path, "result.json"))
    return bool(run.get("completed")) and result is not None


def render_fleet_summary(root: str) -> Optional[str]:
    """One-paragraph digest of the warehouse's ``fleet.json``."""
    document = load_json(os.path.join(root, "fleet.json"))
    if document is None or document.get("kind") != "fleet":
        return None
    summary = document.get("summary") or {}
    quality = document.get("data_quality") or {}
    lines = [
        f"# Fleet aggregate ({document.get('schema')})",
        "",
        f"  chains           {summary.get('chains', 0)} "
        f"({summary.get('complete_chains', 0)} complete)",
        f"  epochs folded    {summary.get('epochs_completed', 0)}",
        f"  alerts           {summary.get('alerts', 0)}",
        f"  grade            {summary.get('grade')} "
        f"(confidence {quality.get('confidence')})",
    ]
    incomplete = quality.get("incomplete") or []
    if incomplete:
        lines.append(
            "  incomplete       " + ", ".join(
                str(chain) for chain in incomplete
            )
        )
    lines.append("")
    return "\n".join(lines)


def render_warehouse(root: str) -> Optional[str]:
    """Digest every monitor chain found under a warehouse root.

    Epoch rows come from each snapshot's ``monitor.json`` sidecar plus
    its ``run.json``/``result.json``; None when the directory holds no
    monitor chains at all.  Epochs that never completed (a chain
    crashed or was parked mid-epoch) are flagged as in-flight rather
    than rendered as zero-tunnel rows, and a chain with *no*
    completed epoch gets an explicit resume hint instead of an empty
    table pretending the chain measured nothing.
    """
    chains = find_chains(root)
    if not chains:
        return None
    lines = []
    fleet = render_fleet_summary(root)
    if fleet is not None:
        lines.append(fleet)
    for chain, members in chains:
        # The manifest stamp always carries the profile; the sidecar
        # only exists for epochs that completed.
        manifest = load_json(
            os.path.join(members[0][1], "MANIFEST.json")
        ) or {}
        stamp = (
            (manifest.get("fingerprint") or {})
            .get("topology", {})
            .get("monitor", {})
        ) or {}
        lines.append(
            f"# Monitor chain {chain} ({len(members)} epochs, "
            f"churn profile {stamp.get('churn_profile')!r})"
        )
        lines.append("")
        lines.append(
            "  epoch  tunnels  carried  stale  probes  churn  snapshot"
        )
        completed_epochs = 0
        for epoch, path in members:
            if not epoch_completed(path):
                lines.append(
                    f"  {epoch:>5}  [in-flight: crashed or parked "
                    "mid-epoch; checkpoint is resumable]  "
                    f"{os.path.basename(path)}"
                )
                continue
            completed_epochs += 1
            sidecar = load_json(
                os.path.join(path, "monitor.json")
            ) or {}
            run = load_json(os.path.join(path, "run.json")) or {}
            result = load_json(
                os.path.join(path, "result.json")
            ) or {}
            probes = sidecar.get(
                "campaign_probes",
                (run.get("probes_sent") or 0)
                + (run.get("revelation_probes") or 0),
            )
            lines.append(
                f"  {epoch:>5}"
                f"  {len(result.get('tunnels') or []):>7}"
                f"  {sidecar.get('pairs_carried', 0):>7}"
                f"  {sidecar.get('pairs_stale', 0):>5}"
                f"  {probes:>6}"
                f"  {len(sidecar.get('churn_events') or []):>5}"
                f"  {os.path.basename(path)}"
                + ("  [partial]" if run.get("partial") else "")
            )
        if completed_epochs == 0:
            lines.append(
                "  (no completed epochs yet — the chain crashed or "
                "was parked before finishing its first epoch; "
                "re-run the same monitor command, or resume the "
                "fleet, to continue from the checkpoints)"
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    try:
        if os.path.isdir(path):
            digest = render_warehouse(path)
            if digest is None:
                print(
                    f"no monitor chains under {path}", file=sys.stderr
                )
                return 1
            print(digest)
            return 0
        document = load_json(path)
        if document is None or "epochs" not in document:
            print(
                f"{path} is not a repro.monitor/1 timeline document",
                file=sys.stderr,
            )
            return 1
        print(render_timeline(document))
    except BrokenPipeError:  # e.g. piped into head
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
