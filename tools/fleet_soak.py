#!/usr/bin/env python
"""Fleet soak harness: crash storms, parking, hard invariants.

Drives :mod:`repro.fleet` the way CI and release gates need it
driven:

1. **Crash-identical recovery** — a fleet whose every chain is
   hard-killed mid-epoch (a staggered *crash storm*) must restart
   from its checkpoints and produce a ``fleet.json`` aggregate
   byte-identical to an unfailed fleet's, with the restart
   bookkeeping confined to the supervision ledger;
2. **Shared render** — N chains (and all their restart attempts)
   must trigger exactly one ``internet_build``; every checkout is a
   copy-on-churn twin of the same frozen render;
3. **Watchdog convergence** (``--epoch-deadline``) — chains throttled
   by a probe-tick watchdog must still converge, because every
   restart resumes from checkpointed progress;
4. **Park, don't fail** (``--park``) — with a zero restart budget a
   killed chain must park, the fleet must return a *degraded* (not
   failed) run, and resuming the same warehouse without faults must
   complete it byte-identically to a never-crashed fleet.

Results land in ``--json`` as a single summary document.  Exit
status is non-zero when any invariant fails.

Usage::

    PYTHONPATH=src python tools/fleet_soak.py --chains 3 \
        --epochs 2 [--epoch-deadline 150] [--park] [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.fleet import FleetConfig, FleetSupervisor  # noqa: E402


def parse_args(argv=None):
    """The soak harness command line."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--vantage-points", type=int, default=3)
    parser.add_argument("--stubs-per-transit", type=int, default=2)
    parser.add_argument("--churn-profile", default="steady")
    parser.add_argument("--fault-profile", default=None)
    parser.add_argument(
        "--kill-stride", type=int, default=70, metavar="PROBES",
        help="chain i of the storm is hard-killed after "
        "(i + 1) * PROBES cumulative probes",
    )
    parser.add_argument(
        "--epoch-deadline", type=int, default=None, metavar="PROBES",
        help="also arm the per-chain watchdog (simulated clock): "
        "epochs exceeding PROBES probes are killed and restarted",
    )
    parser.add_argument(
        "--restart-budget", type=int, default=60,
        help="restarts allowed per chain during the storm (the "
        "watchdog flavour needs several per epoch)",
    )
    parser.add_argument(
        "--park", action="store_true",
        help="also exercise the circuit breaker: a zero-budget fleet "
        "must park its killed chain, downgrade the grade, and remain "
        "resumable to a byte-identical complete run",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="keep warehouses here instead of a temp directory",
    )
    parser.add_argument("--json", default=None)
    return parser.parse_args(argv)


def build_config(args, warehouse, **overrides):
    """One soak fleet configuration over ``warehouse``."""
    base = dict(
        warehouse=warehouse,
        chains=args.chains,
        epochs=args.epochs,
        scale=args.scale,
        seed=args.seed,
        vantage_points=args.vantage_points,
        stubs_per_transit=args.stubs_per_transit,
        churn_profile=args.churn_profile,
        fault_profile=args.fault_profile,
        restart_budget=args.restart_budget,
        backoff_base_ms=0.5,
    )
    base.update(overrides)
    return FleetConfig(**base)


def fleet_bytes(warehouse):
    with open(os.path.join(warehouse, "fleet.json"), "rb") as handle:
        return handle.read()


def run_fleet(config, kill_plan=None):
    supervisor = FleetSupervisor(config, kill_plan=kill_plan)
    report = supervisor.run()
    return report, supervisor


def soak(args, root, failures):
    """Run the storm (and optionally the park drill); summary dict."""
    clean_dir = os.path.join(root, "clean")
    storm_dir = os.path.join(root, "storm")

    clean_report, _ = run_fleet(build_config(args, clean_dir))
    if not clean_report.completed:
        failures.append("clean fleet did not complete every chain")
    oracle = fleet_bytes(clean_dir)

    kill_plan = {
        index: (index + 1) * args.kill_stride
        for index in range(args.chains)
    }
    storm_report, storm_supervisor = run_fleet(
        build_config(
            args, storm_dir, epoch_deadline=args.epoch_deadline
        ),
        kill_plan=kill_plan,
    )
    storm = {
        "chains": args.chains,
        "kill_plan": {str(k): v for k, v in kill_plan.items()},
        "injected_kills": sum(
            c.injected_kills for c in storm_report.chains
        ),
        "watchdog_kills": sum(
            c.watchdog_kills for c in storm_report.chains
        ),
        "restarts": sum(c.restarts for c in storm_report.chains),
        "statuses": [c.status for c in storm_report.chains],
        "renders": storm_supervisor.registry.renders,
        "checkouts": storm_supervisor.registry.checkouts,
        "bit_identical": fleet_bytes(storm_dir) == oracle,
    }
    if not storm_report.completed:
        failures.append(
            "crash storm left chains unfinished: "
            f"{storm['statuses']}"
        )
    if storm["injected_kills"] != args.chains:
        failures.append(
            f"expected {args.chains} injected kills, saw "
            f"{storm['injected_kills']}"
        )
    if not storm["bit_identical"]:
        failures.append(
            "storm fleet.json diverges from the unfailed fleet"
        )
    if storm["renders"] != 1:
        failures.append(
            f"storm rendered {storm['renders']} internets; the "
            "shared-render contract is exactly 1"
        )
    if args.epoch_deadline and storm["watchdog_kills"] == 0:
        failures.append(
            "watchdog armed but never fired; lower --epoch-deadline"
        )

    summary = {
        "clean_epochs": sum(
            c.epochs_completed for c in clean_report.chains
        ),
        "alerts": len(clean_report.document.get("alerts") or []),
        "grade": clean_report.document["summary"]["grade"],
        "storm": storm,
    }

    if args.park:
        park_dir = os.path.join(root, "park")
        park_report, _ = run_fleet(
            build_config(args, park_dir, restart_budget=0),
            kill_plan={args.chains - 1: args.kill_stride},
        )
        parked = [c for c in park_report.chains if c.status == "parked"]
        grade = park_report.document["summary"]["grade"]
        resume_report, _ = run_fleet(build_config(args, park_dir))
        summary["park"] = {
            "parked_chains": len(parked),
            "degraded_grade": grade,
            "resume_statuses": [
                c.status for c in resume_report.chains
            ],
            "resume_bit_identical": fleet_bytes(park_dir) == oracle,
        }
        if len(parked) != 1:
            failures.append(
                f"expected exactly 1 parked chain, saw {len(parked)}"
            )
        if grade == "high":
            failures.append(
                "parked chain did not downgrade the fleet grade"
            )
        if not resume_report.completed:
            failures.append("parked warehouse did not resume cleanly")
        if not summary["park"]["resume_bit_identical"]:
            failures.append(
                "resumed park warehouse diverges from the unfailed "
                "fleet"
            )
    return summary


def main(argv=None):
    """Run the soak; returns the process exit code."""
    args = parse_args(argv)
    failures = []
    root = args.workdir or tempfile.mkdtemp(prefix="fleet-soak-")
    os.makedirs(root, exist_ok=True)
    try:
        summary = soak(args, root, failures)
    finally:
        if args.workdir is None:
            shutil.rmtree(root, ignore_errors=True)
    summary["failures"] = failures
    summary["ok"] = not failures
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(json.dumps(summary, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"SOAK FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
