#!/usr/bin/env python
"""Chaos soak harness: every fault profile, every invariant.

For each shipped fault profile (``repro.faults.FAULT_PROFILES``) the
soak runs the seeded campaign three times and asserts the degradation
contract (DESIGN §11):

1. **No crash** — the faulty campaign completes with a populated
   ``data_quality`` block;
2. **Budgets respected** — a probe budget sized to land mid-campaign
   stops the run cleanly (partial result, no overshoot);
3. **Resume bit-identity** — the checkpointed, budget-killed run,
   resumed on a fresh stack, equals the uninterrupted faulty run
   field-by-field: traces, pings, pairs, revelations, probe totals,
   the quarantine log, ``data_quality``, and the measurement-plane
   counters;
4. **Monotone degradation** (full mode) — candidate pairs and
   successful revelations are non-increasing along the loss ladder
   (``none`` → ``loss-light`` → ``loss-heavy``), whose profiles share
   a seed so their drop sets nest.

``--quick`` trims the matrix to three representative profiles (clean,
stateless loss, network flaps) for CI smoke; the full matrix is the
release gate.  Results land in ``--out`` as ``soak_report.json`` plus
a combined ``quarantine.jsonl`` tagged per profile.  Exit status is
non-zero when any invariant fails.

Usage::

    PYTHONPATH=src python tools/chaos_soak.py [--quick] [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import traceback

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.experiments.common import CampaignContext, ContextConfig  # noqa: E402
from repro.faults import LOSS_LADDER, profile_names  # noqa: E402
from repro.obs import measurement_counters  # noqa: E402
from repro.store import RESUME_EXEMPT_COUNTERS  # noqa: E402

#: Profiles exercised by ``--quick`` (CI smoke): the inert baseline,
#: one stateless-fault profile, one network-mutating profile.
QUICK_PROFILES = ("none", "loss-light", "flap")

#: Small-but-complete campaign: every phase runs, revelations happen,
#: and the full matrix stays within a CI smoke budget.
BASE = dict(
    scale=0.4,
    seed=11,
    vantage_points=3,
    stubs_per_transit=2,
    max_retries=1,
    breaker_threshold=3,
)

GRADES = ("high", "degraded", "poor")


def _build(profile, probe_budget=None, checkpoint_dir=None, resume=False):
    """A fresh campaign stack measured through ``profile``."""
    return CampaignContext(
        ContextConfig(
            fault_profile=profile,
            probe_budget=probe_budget,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            **BASE,
        )
    )


def _counters(context):
    """Measurement-plane counters, resume-exempt names removed."""
    counters = dict(
        measurement_counters(
            context.campaign.obs.metrics.counters_snapshot()
        )
    )
    for name in RESUME_EXEMPT_COUNTERS:
        counters.pop(name, None)
    return counters


def _volumes(result):
    return {
        "traces": len(result.traces),
        "pings": len(result.pings),
        "pairs": len(result.pairs),
        "revelations": len(result.revelations),
        "revealed": len(result.successful_revelations()),
        "probes_sent": result.probes_sent,
        "revelation_probes": result.revelation_probes,
        "quarantined": len(result.quarantine),
    }


def _check(failures, condition, message):
    if not condition:
        failures.append(message)
    return condition


def soak_profile(profile, out_dir):
    """Run one profile through the no-crash / budget / resume gauntlet.

    Returns a JSON-ready report entry; its ``failures`` list is empty
    when every invariant held.
    """
    failures = []
    entry = {"profile": profile, "failures": failures}

    # 1. Uninterrupted faulty run: no crash, data_quality populated.
    try:
        baseline = _build(profile)
    except Exception:  # noqa: BLE001 - the soak's whole point
        failures.append(
            f"uninterrupted run crashed:\n{traceback.format_exc()}"
        )
        return entry
    result = baseline.result
    quality = result.data_quality
    entry["volumes"] = _volumes(result)
    entry["data_quality"] = quality
    entry["quarantine_records"] = [
        dict(record) for record in result.quarantine
    ]
    _check(failures, not result.partial, "uninterrupted run is partial")
    _check(
        failures,
        quality.get("grade") in GRADES,
        f"data_quality grade missing or unknown: {quality.get('grade')!r}",
    )
    _check(
        failures,
        quality.get("techniques") and quality.get("counters"),
        "data_quality techniques/counters not populated",
    )
    baseline_counters = _counters(baseline)

    # 2. Budget-killed checkpointed run: clean stop, no overshoot.
    total = result.probes_sent + result.revelation_probes
    budget = total // 2
    warehouse = os.path.join(out_dir, f"warehouse-{profile}")
    try:
        killed = _build(
            profile, probe_budget=budget, checkpoint_dir=warehouse
        )
    except Exception:  # noqa: BLE001
        failures.append(
            f"budgeted run crashed:\n{traceback.format_exc()}"
        )
        return entry
    partial = killed.result
    _check(
        failures,
        partial.partial,
        f"budget {budget} of {total} probes did not interrupt the run",
    )
    spent = partial.probes_sent + partial.revelation_probes
    _check(
        failures,
        spent <= budget,
        f"budget overshoot: spent {spent} of {budget}",
    )

    # 3. Fresh-stack resume equals the uninterrupted run bit-for-bit.
    try:
        resumed_context = _build(
            profile, checkpoint_dir=warehouse, resume=True
        )
    except Exception:  # noqa: BLE001
        failures.append(f"resume crashed:\n{traceback.format_exc()}")
        return entry
    resumed = resumed_context.result
    _check(failures, not resumed.partial, "resumed run still partial")
    for field in (
        "traces", "pings", "pairs", "revelations",
        "probes_sent", "revelation_probes", "quarantine",
        "data_quality",
    ):
        _check(
            failures,
            getattr(resumed, field) == getattr(result, field),
            f"resume mismatch in {field}",
        )
    _check(
        failures,
        _counters(resumed_context) == baseline_counters,
        "resume mismatch in measurement counters",
    )

    return entry


def write_quarantine(entries_by_profile, path):
    """Combined per-profile quarantine log (one JSONL, tagged)."""
    with open(path, "w", encoding="utf-8") as sink:
        for profile, records in entries_by_profile.items():
            for record in records:
                tagged = {"profile": profile}
                tagged.update(record)
                sink.write(json.dumps(tagged, sort_keys=True))
                sink.write("\n")


def check_ladder(report):
    """Recall must degrade monotonically along the loss ladder."""
    failures = []
    by_profile = {entry["profile"]: entry for entry in report}
    rungs = [
        by_profile[name]["volumes"]
        for name in LOSS_LADDER
        if name in by_profile and "volumes" in by_profile[name]
    ]
    if len(rungs) < len(LOSS_LADDER):
        failures.append("ladder rungs missing volumes (earlier crash?)")
        return failures
    for metric in ("pairs", "revealed"):
        values = [rung[metric] for rung in rungs]
        if any(b > a for a, b in zip(values, values[1:])):
            failures.append(
                f"{metric} not monotonically non-increasing along "
                f"{' -> '.join(LOSS_LADDER)}: {values}"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"only {', '.join(QUICK_PROFILES)} and skip the ladder check",
    )
    parser.add_argument(
        "--out", default="chaos-out", metavar="DIR",
        help="artifact directory (soak_report.json, quarantine.jsonl)",
    )
    args = parser.parse_args(argv)

    os.makedirs(args.out, exist_ok=True)
    profiles = list(QUICK_PROFILES) if args.quick else profile_names()

    report = []
    quarantines = {}
    failed = False
    for profile in profiles:
        print(f"=== {profile}")
        entry = soak_profile(profile, args.out)
        report.append(entry)
        if "data_quality" in entry:
            quality = entry["data_quality"]
            volumes = entry["volumes"]
            print(
                f"    grade {quality.get('grade')} "
                f"(confidence {quality.get('confidence')}), "
                f"{volumes['pairs']} pairs, "
                f"{volumes['revealed']} revealed, "
                f"{volumes['quarantined']} quarantined"
            )
        for failure in entry["failures"]:
            failed = True
            print(f"    FAIL: {failure}")
        # The report stays digest-sized: full quarantine records go to
        # the combined JSONL artifact instead.
        quarantines[profile] = entry.pop("quarantine_records", [])

    ladder_failures = []
    if not args.quick:
        ladder_failures = check_ladder(report)
        for failure in ladder_failures:
            failed = True
            print(f"FAIL (ladder): {failure}")

    document = {
        "schema": "repro.chaos-soak/1",
        "quick": args.quick,
        "config": BASE,
        "profiles": report,
        "ladder_failures": ladder_failures,
        "ok": not failed,
    }
    report_path = os.path.join(args.out, "soak_report.json")
    with open(report_path, "w", encoding="utf-8") as sink:
        json.dump(document, sink, indent=1)
    print(f"report written to {report_path}")
    quarantine_path = os.path.join(args.out, "quarantine.jsonl")
    write_quarantine(quarantines, quarantine_path)
    print(f"quarantine log written to {quarantine_path}")

    verdict = "OK" if not failed else "FAILED"
    print(f"chaos soak {verdict}: {len(profiles)} profiles")
    return 0 if not failed else 1


if __name__ == "__main__":
    sys.exit(main())
