#!/usr/bin/env python3
"""Summarise a campaign trace JSONL (``repro campaign --trace-out``).

Reads the structured event log produced by the observability subsystem
and prints an operator-oriented digest: probes per campaign phase, the
trajectory-cache hit ratio, revelation outcomes per technique, and the
slowest spans.  Self-contained on purpose — it only needs the JSONL
file, not the ``repro`` package, so it can run anywhere the artefact
lands (CI, a laptop, a jump host).

With ``--faults`` the digest is replaced by a JSONL filter: only the
chaos-related events (``fault.injected``, ``fault.flap``,
``measure.quarantine``) are re-emitted, one JSON object per line, for
piping into ``jq`` or a spreadsheet.

Usage::

    python tools/trace_inspect.py trace.jsonl
    python tools/trace_inspect.py --faults trace.jsonl
"""

import json
import sys
from collections import Counter, defaultdict
from typing import Dict, Iterable, List

#: Event kinds re-emitted verbatim by ``--faults``.
FAULT_EVENT_KINDS = (
    "fault.injected",
    "fault.flap",
    "measure.quarantine",
)


def load_records(path: str) -> List[dict]:
    """Parse one record per non-empty line, skipping corrupt lines.

    Truncated writes (a crash mid-line) and stray non-object lines are
    both tolerated: anything that is not a JSON object is dropped, so
    a damaged artefact still yields whatever records survived.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def summarize(records: Iterable[dict]) -> dict:
    """Digest the record stream into one summary dict.

    Probes are attributed to the campaign phase whose
    ``phase.start``/``phase.end`` bracket was open when they were sent
    (``(outside)`` otherwise).  The cache ratio prefers the per-lookup
    ``cache.hit``/``cache.miss`` events and falls back to the
    ``campaign.metrics`` counters when the trace was captured at a
    level that dropped them.
    """
    probes_per_phase: Dict[str, int] = Counter()
    phase_seconds: Dict[str, float] = {}
    cache = Counter()
    verdicts: Dict[str, Counter] = defaultdict(Counter)
    methods = Counter()
    span_totals: Dict[str, List[float]] = defaultdict(list)
    counters: Dict[str, int] = {}
    faults = Counter()
    flaps = Counter()
    quarantine = Counter()
    tenant_events: Dict[str, int] = Counter()
    tenant_probes: Dict[str, int] = Counter()
    serve_summary: dict = {}
    current_phase = "(outside)"

    for record in records:
        kind = record.get("kind")
        tenant = record.get("tenant")
        if tenant is not None:
            tenant_events[str(tenant)] += 1
            if kind == "probe.sent":
                tenant_probes[str(tenant)] += 1
        if kind == "phase.start":
            current_phase = str(record.get("phase"))
        elif kind == "phase.end":
            phase = str(record.get("phase"))
            phase_seconds[phase] = (
                phase_seconds.get(phase, 0.0)
                + float(record.get("seconds", 0.0))
            )
            current_phase = "(outside)"
        elif kind == "probe.sent":
            probes_per_phase[current_phase] += 1
        elif kind == "cache.hit":
            cache["hits"] += 1
        elif kind == "cache.miss":
            cache["misses"] += 1
        elif kind == "revelation.verdict":
            methods[str(record.get("method"))] += 1
        elif kind == "technique.verdict":
            technique = str(record.get("technique"))
            outcome = "success" if record.get("success") else "failure"
            verdicts[technique][outcome] += 1
        elif kind == "fault.injected":
            faults[str(record.get("fault"))] += 1
        elif kind == "fault.flap":
            flaps[str(record.get("action"))] += 1
        elif kind == "measure.quarantine":
            quarantine[str(record.get("reason"))] += 1
        elif kind == "span":
            span_totals[str(record.get("name"))].append(
                float(record.get("ms", 0.0))
            )
        elif kind == "campaign.metrics":
            counters = dict(record.get("counters") or {})
        elif kind == "serve.metrics":
            serve_summary = dict(record.get("summary") or {})

    hits, misses = cache["hits"], cache["misses"]
    if hits + misses == 0 and counters:
        hits = int(counters.get("engine.trajectory_hits", 0))
        misses = int(counters.get("engine.trajectory_misses", 0))
    lookups = hits + misses
    return {
        "probes_per_phase": dict(probes_per_phase),
        "phase_seconds": phase_seconds,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / lookups if lookups else 0.0,
        },
        "revelation_methods": dict(methods),
        "technique_verdicts": {
            technique: dict(outcomes)
            for technique, outcomes in verdicts.items()
        },
        "techniques": _technique_counters(counters),
        "spans": {
            name: {
                "count": len(values),
                "total_ms": round(sum(values), 3),
                "mean_ms": round(sum(values) / len(values), 3),
            }
            for name, values in span_totals.items()
        },
        "faults": dict(faults),
        "flaps": dict(flaps),
        "quarantine": dict(quarantine),
        "counters": counters,
        "tenant_events": dict(tenant_events),
        "tenant_probes": dict(tenant_probes),
        "serve": serve_summary,
    }


def _technique_counters(counters: Dict[str, int]) -> Dict[str, Dict[str, int]]:
    """Group the ``technique.*`` metrics family per technique.

    ``technique.<name>.<stat>`` counters come straight from the
    technique registry's instrumented analyzers and revelation
    strategies, so the digest enumerates whatever techniques actually
    ran — nothing hardcoded.
    """
    techniques: Dict[str, Dict[str, int]] = defaultdict(dict)
    for name, value in counters.items():
        if not name.startswith("technique."):
            continue
        parts = name.split(".", 2)
        if len(parts) != 3:
            continue
        techniques[parts[1]][parts[2]] = value
    return dict(techniques)


def render(summary: dict) -> str:
    """The summary as aligned, human-readable text."""
    lines = ["# Campaign trace summary", ""]

    lines.append("## Probes per phase")
    probes = summary["probes_per_phase"]
    if probes:
        for phase, count in sorted(probes.items()):
            seconds = summary["phase_seconds"].get(phase)
            timing = f"  ({seconds:.3f} s)" if seconds is not None else ""
            lines.append(f"  {phase:<12s} {count:>8d}{timing}")
    else:
        lines.append("  (no probe.sent events — trace not at debug level)")
    lines.append("")

    cache = summary["cache"]
    lines.append("## Trajectory cache")
    lines.append(
        f"  {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['hit_ratio']:.1%} hit ratio)"
    )
    lines.append("")

    compiled = {
        name: value
        for name, value in summary["counters"].items()
        if name.startswith("dataplane.compiled.")
    }
    if any(compiled.values()):
        lines.append("## Compiled data plane")
        for name, value in sorted(compiled.items()):
            label = name[len("dataplane.compiled."):]
            lines.append(f"  {label:<22s} {value:>8d}")
        lines.append("")

    monitor = {
        name: value
        for name, value in summary["counters"].items()
        if name.startswith("monitor.")
    }
    if monitor:
        lines.append("## Monitor")
        for name, value in sorted(monitor.items()):
            label = name[len("monitor."):]
            lines.append(f"  {label:<22s} {value:>8d}")
        skipped = monitor.get("monitor.pairs_skipped", 0)
        reprobed = monitor.get("monitor.pairs_reprobed", 0)
        if skipped + reprobed:
            ratio = skipped / (skipped + reprobed)
            lines.append(
                f"  {'carried ratio':<22s} {ratio:>8.1%}"
            )
        lines.append("")

    lines.append("## Revelation outcomes")
    methods = summary["revelation_methods"]
    if methods:
        for method, count in sorted(methods.items()):
            lines.append(f"  {method:<12s} {count:>6d}")
    else:
        lines.append("  (no revelation.verdict events)")
    for technique, outcomes in sorted(
        summary["technique_verdicts"].items()
    ):
        successes = outcomes.get("success", 0)
        total = successes + outcomes.get("failure", 0)
        lines.append(
            f"  {technique:<12s} {successes}/{total} successful"
        )
    lines.append("")

    techniques = summary.get("techniques") or {}
    if techniques:
        lines.append("## Techniques")
        for technique, stats in sorted(techniques.items()):
            for stat, value in sorted(stats.items()):
                label = f"{technique}.{stat}"
                lines.append(f"  {label:<26s} {value:>8d}")
        lines.append("")

    faults = summary["faults"]
    flaps = summary["flaps"]
    quarantine = summary["quarantine"]
    counters = summary["counters"]
    chaos_counters = {
        name: value
        for name, value in counters.items()
        if name.startswith(("faults.", "measure.quarantined"))
        or name
        in ("measure.retries_exhausted", "campaign.pings_parked")
    }
    if faults or flaps or quarantine or chaos_counters:
        lines.append("## Faults and quarantine")
        for fault, count in sorted(faults.items()):
            lines.append(f"  injected {fault:<18s} {count:>6d}")
        for action, count in sorted(flaps.items()):
            lines.append(f"  flap     {action:<18s} {count:>6d}")
        for reason, count in sorted(quarantine.items()):
            lines.append(f"  quarantined {reason:<15s} {count:>6d}")
        if not (faults or flaps or quarantine):
            lines.append(
                "  (no per-event records — trace not at debug level; "
                "counters below)"
            )
        for name, value in sorted(chaos_counters.items()):
            lines.append(f"  {name:<28s} {value:>6d}")
        lines.append("")

    serve = summary["serve"]
    tenant_events = summary["tenant_events"]
    serve_counters = {
        name: value
        for name, value in summary["counters"].items()
        if name.startswith("serve.")
    }
    if serve or tenant_events or serve_counters:
        lines.append("## Serve")
        registry = serve.get("registry") or {}
        if registry:
            lines.append(
                f"  snapshots: {registry.get('renders', 0)} rendered, "
                f"{registry.get('builds_avoided', 0)} builds avoided "
                f"(~{registry.get('saved_ms', 0)} ms saved)"
            )
        if "completed" in serve or "cancelled" in serve:
            lines.append(
                f"  sessions: {serve.get('completed', 0)} completed, "
                f"{serve.get('cancelled', 0)} cancelled"
            )
        for name, value in sorted(serve_counters.items()):
            lines.append(f"  {name:<28s} {value:>8d}")
        scheduler = serve.get("scheduler") or {}
        for tenant in sorted(set(tenant_events) | set(scheduler)):
            lane = scheduler.get(tenant) or {}
            parts = [f"  tenant {tenant:<12s}"]
            if lane:
                parts.append(
                    f"weight {lane.get('weight', 1.0):<5g} "
                    f"{lane.get('granted_batches', 0):>6d} batches "
                    f"{lane.get('granted_probes', 0):>7d} probes granted"
                )
            events = tenant_events.get(tenant)
            if events:
                probes = summary["tenant_probes"].get(tenant, 0)
                parts.append(
                    f"  {events:>6d} events"
                    + (f" {probes:>6d} probes" if probes else "")
                )
            lines.append(" ".join(parts))
        lines.append("")

    spans = summary["spans"]
    if spans:
        lines.append("## Spans (by total time)")
        ranked = sorted(
            spans.items(),
            key=lambda item: item[1]["total_ms"],
            reverse=True,
        )
        for name, stats in ranked:
            lines.append(
                f"  {name:<24s} {stats['count']:>6d} x "
                f"{stats['mean_ms']:>8.3f} ms  "
                f"(total {stats['total_ms']:.3f} ms)"
            )
        lines.append("")
    return "\n".join(lines)


def filter_faults(records: Iterable[dict]) -> List[dict]:
    """The chaos-related events, original order preserved."""
    return [
        record
        for record in records
        if record.get("kind") in FAULT_EVENT_KINDS
    ]


def main(argv: List[str]) -> int:
    arguments = list(argv[1:])
    faults_only = "--faults" in arguments
    if faults_only:
        arguments.remove("--faults")
    if len(arguments) != 1 or arguments[0] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = arguments[0]
    try:
        records = load_records(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 2
    try:
        if faults_only:
            for record in filter_faults(records):
                print(json.dumps(record, sort_keys=True))
        else:
            print(render(summarize(records)))
    except BrokenPipeError:  # e.g. piped into head
        return 0
    if not records:
        # Zero-record summary printed above; the status still flags
        # the empty artefact so CI pipelines notice.
        print(f"no records found in {path}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
