#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from actual experiment runs."""
import io

from repro.experiments import (
    fig01_degree, fig04_gns3, fig05_ftl, fig06_rtt, fig07_rfa,
    fig08_te_er, fig09_rtla, fig10_degree, fig11_pathlen,
    table1_signatures, table2_visibility, table3_crossval,
    table4_per_as, table5_deployment, table6_applicability,
)

out = io.StringIO()
w = out.write

w("""# EXPERIMENTS — paper vs. measured

Every table and figure of the paper, regenerated on the simulator.
Absolute numbers differ by construction (the substrate is a synthetic
Internet, not PlanetLab + CAIDA); the **shape** column states the
property the paper establishes and whether this reproduction shows it.
Regenerate everything with `pytest benchmarks/ --benchmark-only`
(tables land in `benchmarks/output/`), or one at a time with
`repro experiment <id>`.

""")

fig4 = fig04_gns3.run()
w("## Fig. 2 / Fig. 4 — GNS3 emulation (golden)\n\n")
w("Paper: full paris-traceroute transcripts for four MPLS configs.\n")
w("Measured: **exact match** — every hop, label quote and bracketed\n")
w("return TTL equals the paper's output (asserted verbatim in\n")
w("`tests/test_gns3_golden.py`). Excerpt (backward-recursive):\n\n```\n")
w(fig4.transcripts["backward-recursive"][0])
w("\n```\n\n")

t1 = table1_signatures.run()
w("## Table 1 — router signatures\n\n")
w(f"Measured on the mini-testbed: all four pair-signatures match: {t1.all_match}.\n\n```\n" + t1.text + "\n```\n\n")

t2 = table2_visibility.run()
w("## Table 2 — visibility effects grid\n\n")
w(f"All 16 emulated cells match the paper's predictions: {t2.all_match}.\n\n```\n" + t2.text + "\n```\n\n")

t3 = table3_crossval.run()
w("## Table 3 — cross-validation on explicit tunnels\n\n")
w("Paper: 92% success (DPR 57%, BRPR 3%, hybrid 5%, ambiguous 26%, fail 8%).\n")
w(f"Measured: {t3.success_rate:.0%} success over {t3.tunnels_found} tunnels; "
  "DPR dominates BRPR and the single-LSR ambiguous class is large, as in the paper "
  "(our synthetic cores are shallower, so the ambiguous class is larger).\n\n```\n" + t3.text + "\n```\n\n")

t4 = table4_per_as.run()
w("## Table 4 — per-AS discovery and graph density\n\n")
w("Paper: density drops up to 10x after revelation; BT (AS2856) reveals ~nothing.\n")
w("Measured: densities never rise and drop for every AS with revelations; "
  "the UHP-only AS2856 yields zero candidate pairs.\n\n```\n" + t4.text + "\n```\n\n")

t5 = table5_deployment.run()
w("## Table 5 — MPLS deployment per AS\n\n")
w("Paper: Cisco-heavy ASes lean BRPR, Juniper-heavy lean DPR; FRPLA/RTLA track FTL.\n")
w("Measured: same correlation (AS3257/9498 DPR-dominant, AS3491/6762 show BRPR, "
  "AS4134/1299 mostly single-LSR ambiguous); FRPLA and RTLA medians sit within "
  "a hop or two of the revealed FTL.\n\n```\n" + t5.text + "\n```\n\n")

t6 = table6_applicability.run()
w("## Table 6 — technique applicability\n\n")
w(f"All firm claims verified by emulation: {t6.all_verified}.\n\n```\n" + t6.text + "\n```\n\n")

f1 = fig01_degree.run()
w("## Fig. 1 — ITDK degree distribution\n\n")
w(f"Paper: heavy-tailed PDF with HDNs. Measured: {f1.node_count} nodes, "
  f"max degree {f1.max_degree}, {f1.hdn_count} HDNs at threshold {f1.hdn_threshold}.\n\n")

f5 = fig05_ftl.run()
w("## Fig. 5 — forward tunnel length\n\n")
w("Paper: strongly decreasing, short tail, single-LSR red dot, BRPR shorter than DPR.\n")
w(f"Measured ({f5.total_revealed} tunnels):\n\n```\n" + f5.text + "\n```\n\n")

f6 = fig06_rtt.run()
w("## Fig. 6 — RTT correction\n\n")
w(f"Paper: a ~50 ms jump between LERs decomposes over 7 revealed hops (AS3549).\n")
w(f"Measured: largest single-hop RTT step {f6.invisible_jump_ms:.1f} ms before vs "
  f"{f6.visible_jump_ms:.1f} ms after revealing a {f6.tunnel_length}-hop tunnel (AS{f6.asn}).\n\n")

f7 = fig07_rfa.run()
m = f7.medians()
w("## Fig. 7 — Return vs Forward Asymmetry\n\n")
w("Paper: Others/Ingress ~N(0) (median 1); Egress-PR shifted (median 4); correction re-centres at 0.\n")
w(f"Measured medians: others {m['others']}, ingress {m['ingress']}, "
  f"egress-PR {m['egress_pr']} ({f7.egress_pr.fraction(lambda v: v>0):.0%} positive), "
  f"corrected {m['corrected']}.\n\n```\n" + f7.text + "\n```\n\n")

f8 = fig08_te_er.run()
w("## Fig. 8 — RFA: time-exceeded vs echo-reply\n\n")
w("Paper: TE median 4, echo-reply peak at 0 (median 2).\n")
w(f"Measured: TE median {f8.time_exceeded.median:g}, echo-reply median "
  f"{f8.echo_reply.median:g}.\n\n")

f9 = fig09_rtla.run()
w("## Fig. 9 — RTLA\n\n")
w("Paper: 9a mirrors the forward-length distribution; 9b (RTLA - FTL) ~N(0).\n")
w(f"Measured: return-tunnel median {f9.return_tunnel_lengths.median:g} over "
  f"{len(f9.return_tunnel_lengths)} LERs; asymmetry median "
  f"{f9.tunnel_asymmetry.median:g} (mean {f9.tunnel_asymmetry.mean:.2f}).\n\n")

f10 = fig10_degree.run()
w("## Fig. 10 — degree distribution correction\n\n")
w("Paper: revelation removes the full-mesh peaks (AS3320's 23-router mesh).\n")
w(f"Measured (focus AS{f10.focus_asn}): mean degree "
  f"{f10.invisible_focus.mean:.2f} -> {f10.visible_focus.mean:.2f}, "
  f"max {f10.invisible_focus.max:g} -> {f10.visible_focus.max:g}.\n\n")

f11 = fig11_pathlen.run()
w("## Fig. 11 — path length distribution\n\n")
w("Paper: bell curves, mean 10 -> 12 after revelation (an underestimate).\n")
w(f"Measured: mean {f11.invisible.mean:.2f} -> {f11.visible.mean:.2f} "
  f"(shift +{f11.mean_shift:.2f}); still an underestimate since only each "
  "trace's matched tunnels are re-counted.\n\n")

w("""## Ablations (beyond the paper)

`pytest benchmarks/ -k ablation --benchmark-only` regenerates:

* **min-rule off** — the FRPLA shift vanishes (egress RFA 3 -> <= 0),
  confirming the Sec. 3.1 mechanism;
* **UHP vs PHP** — the revelation recursion drops from full content to
  zero, confirming Sec. 3.4;
* **RFC 4950 off** — explicit tunnels stay walkable but unflaggable
  (0 labelled hops), so cross-validation loses its ground truth;
* **trigger threshold / ICMP rate limiting** — yield-vs-cost curves
  for the conclusion's tunnel-aware traceroute;
* **survey-driven random Internets** — invariants (no fabricated hops,
  aggregate density never rises) hold across seeds;
* **taxonomy coverage** — explicit (RFC 4950), implicit (u-turn
  signature) and invisible tunnels coexist in a mixed deployment, and
  only the 2017 techniques reach the invisible class.
""")

open("EXPERIMENTS.md", "w").write(out.getvalue())
print("EXPERIMENTS.md written,", len(out.getvalue()), "bytes")
