#!/usr/bin/env python3
"""Summarise a campaign warehouse (``repro campaign --checkpoint``).

Walks a warehouse root (or a single snapshot directory) and prints an
operator-oriented digest per snapshot: identity fingerprint, per-phase
record counts and sizes, checkpointed probe/budget progression, run
status, and the revealed-tunnel summary when ``result.json`` exists.
It also validates the crash-safety invariants the resume path relies
on — per-phase ``index`` contiguity and the global ``seq`` chain — and
flags damaged tails instead of crashing on them.  A snapshot whose
process died before writing ``run.json`` is reported as a resumable
mid-epoch crash, and a warehouse-level ``fleet.json`` (a fleet run's
``repro.fleet/1`` aggregate) is summarised up front.  Self-contained on
purpose: it only needs the files, not the ``repro`` package, so it can
run anywhere the artefact lands (CI, a laptop, a jump host).

Usage::

    python tools/store_inspect.py STORE_DIR_OR_SNAPSHOT
"""

import json
import os
import sys
from typing import List, Optional, Tuple

PHASES = ("trace", "ping", "pairs", "revelation")


def load_json(path: str) -> Optional[dict]:
    """One JSON document; None when missing, corrupt, or not a dict."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None


def load_phase(path: str) -> Tuple[List[dict], int, bool]:
    """Load a phase file's valid record prefix.

    Returns ``(records, file_bytes, damaged)`` where ``damaged`` is
    True when lines after the valid prefix exist (truncated write or
    corruption) — the resume path would drop them, and so do we.
    """
    records: List[dict] = []
    damaged = False
    try:
        size = os.path.getsize(path)
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return records, 0, False
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                damaged = True
                break
            if (
                not isinstance(record, dict)
                or record.get("index") != len(records)
            ):
                damaged = True
                break
            records.append(record)
    return records, size, damaged


def find_snapshots(root: str) -> List[str]:
    """Snapshot directories under ``root`` (or ``root`` itself)."""
    if os.path.isfile(os.path.join(root, "MANIFEST.json")):
        return [root]
    found = []
    try:
        children = sorted(os.listdir(root))
    except OSError:
        return []
    for child in children:
        path = os.path.join(root, child)
        if os.path.isfile(os.path.join(path, "MANIFEST.json")):
            found.append(path)
    return found


def monitor_stamp(path: str) -> Optional[dict]:
    """The snapshot's monitor-chain stamp, when it belongs to one.

    ``repro monitor`` stamps each epoch's topology fingerprint with
    ``{"chain", "epoch", "churn_profile"}``; standalone campaign
    snapshots have no stamp and return None.
    """
    manifest = load_json(os.path.join(path, "MANIFEST.json")) or {}
    fingerprint = manifest.get("fingerprint") or {}
    topology = fingerprint.get("topology") or {}
    stamp = topology.get("monitor")
    return stamp if isinstance(stamp, dict) else None


def group_snapshots(
    paths: List[str],
) -> Tuple[List[Tuple[str, List[Tuple[int, str]]]], List[str]]:
    """Split snapshots into monitor chains and standalone ones.

    Returns ``(chains, standalone)`` where each chain is
    ``(chain_id, [(epoch, path), ...])`` sorted by epoch, so the
    digest prints a chain's epochs in temporal order rather than the
    content-key order the directory listing happens to have.
    """
    chains: dict = {}
    standalone: List[str] = []
    for path in paths:
        stamp = monitor_stamp(path)
        if stamp is None:
            standalone.append(path)
            continue
        chain = str(stamp.get("chain"))
        epoch = int(stamp.get("epoch") or 0)
        chains.setdefault(chain, []).append((epoch, path))
    ordered = [
        (chain, sorted(members))
        for chain, members in sorted(chains.items())
    ]
    return ordered, standalone


def summarize_snapshot(path: str) -> dict:
    """Digest one snapshot directory into a summary dict."""
    manifest = load_json(os.path.join(path, "MANIFEST.json")) or {}
    phases = {}
    position = 0
    seq_broken = False
    last_state = None
    quarantined = 0
    for phase in PHASES:
        records, size, damaged = load_phase(
            os.path.join(path, "phases", f"{phase}.jsonl")
        )
        surviving = 0
        for record in records:
            if not seq_broken and record.get("seq") == position:
                position += 1
                surviving += 1
                state = record.get("state")
                if isinstance(state, dict):
                    last_state = state
                    quarantined += len(
                        state.get("quarantine_added") or []
                    )
            else:
                seq_broken = True
        phases[phase] = {
            "records": len(records),
            "surviving": surviving,
            "bytes": size,
            "damaged": damaged or len(records) != surviving,
        }
    return {
        "path": path,
        "manifest": manifest,
        "phases": phases,
        "chain_length": position,
        "last_state": last_state,
        "quarantined": quarantined,
        "run": load_json(os.path.join(path, "run.json")),
        "result": load_json(os.path.join(path, "result.json")),
    }


def render(summary: dict) -> str:
    """One snapshot's summary as aligned, human-readable text."""
    manifest = summary["manifest"]
    fingerprint = manifest.get("fingerprint") or {}
    topology = fingerprint.get("topology") or {}
    targets = fingerprint.get("targets") or {}
    lines = [f"# Snapshot {summary['path']}", ""]
    lines.append(
        f"  schema   {manifest.get('schema', '(missing manifest)')}"
    )
    key = manifest.get("key") or "?"
    lines.append(f"  key      {key[:16]}…")
    if topology:
        described = ", ".join(
            f"{name}={value}" for name, value in sorted(topology.items())
        )
        lines.append(f"  topology {described}")
    if targets:
        lines.append(f"  targets  {targets.get('count')} destinations")
    lines.append("")

    lines.append("## Phase records")
    for phase, stats in summary["phases"].items():
        note = ""
        if stats["damaged"]:
            dropped = stats["records"] - stats["surviving"]
            detail = (
                f"{dropped} record(s) unusable"
                if dropped
                else "corrupt trailing bytes dropped on resume"
            )
            note = f"  [damaged tail: {detail}]"
        lines.append(
            f"  {phase:<12s} {stats['surviving']:>6d} records "
            f"{stats['bytes']:>10d} B{note}"
        )
    lines.append(f"  checkpoint chain: {summary['chain_length']} records")
    lines.append("")

    state = summary["last_state"]
    if state:
        result = state.get("result") or {}
        service = state.get("service") or {}
        lines.append("## Checkpointed progression")
        lines.append(
            f"  probes_sent        {result.get('probes_sent', '?')}"
        )
        lines.append(
            f"  revelation_probes  {result.get('revelation_probes', '?')}"
        )
        lines.append(
            f"  service probes     {service.get('probes_sent', '?')}"
        )
        scopes = service.get("scope_spent") or {}
        for scope, spent in sorted(scopes.items()):
            lines.append(f"  scope {scope:<12s} {spent}")
        counters = state.get("counters") or {}
        chaos = {
            name: value
            for name, value in counters.items()
            if name.startswith(("faults.", "measure.quarantined"))
            or name
            in ("measure.retries_exhausted", "campaign.pings_parked")
        }
        if chaos or summary.get("quarantined"):
            lines.append(
                f"  quarantined records  {summary.get('quarantined', 0)}"
            )
        for name, value in sorted(chaos.items()):
            lines.append(f"  {name:<28s} {value}")
        lines.append("")

    run = summary["run"]
    if run:
        status = "partial" if run.get("partial") else "complete"
        lines.append(f"## Last run: {status}")
        if run.get("stop_reason"):
            lines.append(f"  stop reason: {run['stop_reason']}")
        for name in (
            "traces", "pings", "pairs", "revelations",
            "probes_sent", "revelation_probes",
        ):
            if name in run:
                lines.append(f"  {name:<18s} {run[name]}")
        lines.append("")
    elif summary["chain_length"]:
        # Phase records but no run.json: the process died mid-epoch
        # before writing any status.  Say so instead of silently
        # omitting the section — the checkpoint prefix is intact and
        # the run is resumable.
        lines.append("## Last run: crashed mid-epoch (no run.json)")
        lines.append(
            f"  {summary['chain_length']} checkpointed records "
            "survive; re-running the same campaign/monitor/fleet "
            "command resumes from them bit-identically"
        )
        lines.append("")

    result = summary["result"]
    if result:
        volumes = result.get("volumes") or {}
        tunnels = result.get("tunnels") or []
        lines.append("## Result summary")
        lines.append(
            f"  tunnels revealed   "
            f"{volumes.get('tunnels_revealed', len(tunnels))}"
        )
        per_as = result.get("per_as") or []
        for row in per_as:
            if not isinstance(row, dict) or not row.get("revealed_pairs"):
                continue
            lines.append(
                f"  AS{row.get('asn') if row.get('asn') is not None else '?':<6} "
                f"{str(row.get('name') or '?'):<24s} "
                f"{row.get('revealed_pairs')}/{row.get('ie_pairs')} "
                f"pairs revealed, {row.get('lsr_ips')} LSR IPs"
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    snapshots = find_snapshots(argv[1])
    if not snapshots:
        print(f"no campaign snapshots under {argv[1]}", file=sys.stderr)
        return 1
    chains, standalone = group_snapshots(snapshots)
    fleet = load_json(os.path.join(argv[1], "fleet.json"))
    try:
        if isinstance(fleet, dict) and fleet.get("kind") == "fleet":
            summary = fleet.get("summary") or {}
            print(
                f"# Fleet aggregate: {summary.get('chains', 0)} "
                f"chains, {summary.get('epochs_completed', 0)} epochs "
                f"folded, grade {summary.get('grade')}, "
                f"{summary.get('alerts', 0)} alert(s)"
            )
            print()
        for chain, members in chains:
            stamp = monitor_stamp(members[0][1]) or {}
            epochs = ", ".join(
                f"e{epoch}={os.path.basename(path)}"
                for epoch, path in members
            )
            print(
                f"# Monitor chain {chain} "
                f"({len(members)} epochs, churn profile "
                f"{stamp.get('churn_profile')!r})"
            )
            print(f"  epoch order: {epochs}")
            print()
            for _, path in members:
                print(render(summarize_snapshot(path)))
        for path in standalone:
            print(render(summarize_snapshot(path)))
    except BrokenPipeError:  # e.g. piped into head
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
