"""Bench: regenerate Table 3 (cross-validation on explicit tunnels)."""

from repro.experiments import table3_crossval


def test_table3_crossvalidation(benchmark, emit):
    result = benchmark(table3_crossval.run)
    assert result.tunnels_found > 0
    # Shape: the techniques recover the vast majority of tunnels and
    # DPR dominates BRPR (Table 3: 92% success, DPR 57% vs BRPR 3%).
    assert result.success_rate >= 0.8
    assert result.shares.get("dpr-successful", 0) > result.shares.get(
        "brpr-successful", 0
    )
    emit("table3_crossvalidation", result.text)
