"""Ablation benches at campaign scale: robustness knobs.

Sweeps the tunnel-aware traceroute trigger threshold and the ICMP
response rate, measuring revelation yield against probing cost.
"""

from repro.core.revelation import TunnelAwareTraceroute
from repro.experiments.common import format_table
from repro.synth.failures import rate_limit_routers, restore
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


def _small_internet(seed=31):
    return build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.5)),
            vantage_points=4,
            stubs_per_transit=2,
            seed=seed,
        )
    )


def run_trigger_threshold_sweep():
    """Tunnel-aware traceroute: threshold vs yield and cost."""
    rows = []
    for threshold in (1, 2, 4, 8):
        internet = _small_internet()
        tracer = TunnelAwareTraceroute(
            internet.prober, trigger_threshold=threshold
        )
        vp = internet.vps[0]
        before = internet.prober.probes_sent
        revealed = 0
        for dst in internet.campaign_targets():
            _, revelations = tracer.trace(vp, dst)
            revealed += sum(r.tunnel_length for r in revelations)
        rows.append(
            (threshold, revealed, internet.prober.probes_sent - before)
        )
    return rows


def test_ablation_trigger_threshold(benchmark, emit):
    rows = benchmark.pedantic(
        run_trigger_threshold_sweep, rounds=1, iterations=1
    )
    yields = {threshold: revealed for threshold, revealed, _ in rows}
    costs = {threshold: cost for threshold, _, cost in rows}
    # A lower trigger reveals at least as much, for at least as many
    # probes; a huge threshold reveals (almost) nothing.
    assert yields[1] >= yields[4] >= yields[8]
    assert costs[1] >= costs[8]
    emit(
        "ablation_trigger_threshold",
        format_table(
            ["threshold", "hops revealed", "probes"], rows,
            title="Ablation: tunnel-aware traceroute trigger threshold",
        ),
    )


def run_rate_limit_sweep():
    """Revelation completeness under ICMP rate limiting."""
    from repro.campaign.orchestrator import Campaign, CampaignConfig

    rows = []
    for rate in (1.0, 0.9, 0.6, 0.3):
        internet = _small_internet()
        if rate < 1.0:
            rate_limit_routers(
                internet.network, rate=rate,
                asns=internet.transit_asns, seed=4,
            )
        campaign = Campaign(
            internet.prober,
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(internet.transit_asns)
            ),
        )
        result = campaign.run(internet.campaign_targets())
        rows.append(
            (
                rate,
                len(result.pairs),
                len(result.successful_revelations()),
            )
        )
    return rows


def test_ablation_rate_limit(benchmark, emit):
    rows = benchmark.pedantic(run_rate_limit_sweep, rounds=1, iterations=1)
    by_rate = {rate: revealed for rate, _, revealed in rows}
    # Heavy rate limiting must not *increase* the yield.
    assert by_rate[0.3] <= by_rate[1.0]
    emit(
        "ablation_rate_limit",
        format_table(
            ["response rate", "candidate pairs", "revealed"], rows,
            title="Ablation: ICMP rate limiting vs revelation yield",
        ),
    )
