"""Bench (extension): full graph-metric correction table."""

from repro.experiments import graph_summary


def test_graph_summary_correction(benchmark, emit):
    result = benchmark(graph_summary.run)
    before, after = result.invisible, result.visible
    # Revelation adds real nodes, removes false links' density, and
    # stretches paths.
    assert after.node_count >= before.node_count
    assert after.density <= before.density + 1e-9
    assert (
        after.mean_path_length is None
        or before.mean_path_length is None
        or after.mean_path_length >= before.mean_path_length
    )
    emit("graph_summary", result.text)
