"""Bench: regenerate Fig. 6 (RTT correction with hop revelation)."""

from repro.experiments import fig06_rtt


def test_fig06_rtt_correction(benchmark, emit):
    result = benchmark(fig06_rtt.run)
    assert result.tunnel_length >= 1
    # Shape: revelation decomposes the RTT jump — the largest
    # single-hop step shrinks once hidden hops are spliced in.
    assert result.visible_jump_ms <= result.invisible_jump_ms
    assert len(result.visible) == len(result.invisible) + result.tunnel_length
    emit("fig06_rtt", result.text)
