"""Bench: regenerate Fig. 10 (degree distribution correction)."""

from repro.experiments import fig10_degree


def test_fig10_degree_correction(benchmark, emit):
    result = benchmark(fig10_degree.run)
    # Shape: revelation strictly reduces the top of the distribution
    # for the focus AS (the full-mesh collapses), and adds nodes.
    assert len(result.visible_all) >= len(result.invisible_all)
    assert result.visible_focus.max <= result.invisible_focus.max
    assert result.visible_focus.mean < result.invisible_focus.mean
    emit("fig10_degree", result.text)
