"""Performance benches for the simulator itself.

Not a paper artefact: these keep the substrate honest.  The campaign
experiments replay tens of thousands of probes; per-probe cost and
route-cache effectiveness are what make that feasible, so regressions
here matter as much as scientific ones.
"""

import pytest

from repro.dataplane.engine import ForwardingEngine
from repro.routing.control import ControlPlane
from repro.synth.gns3 import build_gns3
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


@pytest.fixture(scope="module")
def internet():
    return build_internet(InternetConfig(seed=77))


@pytest.fixture(scope="module")
def internet_uncached():
    return build_internet(InternetConfig(seed=77, trajectory_cache=False))


@pytest.fixture(scope="module")
def internet_compiled():
    """Same Internet, probing through the compiled batch data plane."""
    return build_internet(
        InternetConfig(
            seed=77,
            trajectory_cache=False,
            compiled_plane=True,
            probe_batch_window=8,
        )
    )


@pytest.fixture(scope="module")
def internet_te():
    """RSVP-TE tunnels installed, probing through the compiled plane."""
    return build_internet(
        InternetConfig(
            seed=77,
            trajectory_cache=False,
            compiled_plane=True,
            probe_batch_window=8,
            te_tunnels_per_transit=2,
        )
    )


def test_perf_single_probe_testbed(benchmark):
    testbed = build_gns3("backward-recursive")
    dst = testbed.address("CE2.left")
    vp = testbed.vantage_point

    def probe():
        return testbed.engine.send_probe(vp, dst, ttl=7, flow_id=1)

    outcome = benchmark(probe)
    assert outcome.responded


def test_perf_probe_across_internet(benchmark, internet):
    vp = internet.vps[0]
    dst = internet.campaign_targets()[-1]

    def probe():
        return internet.engine.send_probe(vp, dst, ttl=40, flow_id=1)

    outcome = benchmark(probe)
    assert outcome.forward_path


def test_perf_full_traceroute(benchmark, internet):
    vp = internet.vps[0]
    dst = internet.campaign_targets()[0]

    def trace():
        return internet.prober.traceroute(vp, dst, start_ttl=2)

    result = benchmark(trace)
    assert result.hops


def test_perf_full_traceroute_uncached(benchmark, internet_uncached):
    """The walk-per-probe baseline the trajectory cache is measured
    against (same trace as ``test_perf_full_traceroute``)."""
    internet = internet_uncached
    vp = internet.vps[0]
    dst = internet.campaign_targets()[0]

    def trace():
        return internet.prober.traceroute(vp, dst, start_ttl=2)

    result = benchmark(trace)
    assert result.hops


def test_perf_full_traceroute_compiled(benchmark, internet_compiled):
    """The same trace as the uncached baseline, executed as TTL
    batches over the compiled plane's per-flow programs."""
    internet = internet_compiled
    vp = internet.vps[0]
    dst = internet.campaign_targets()[0]

    def trace():
        return internet.prober.traceroute(vp, dst, start_ttl=2)

    result = benchmark(trace)
    assert result.hops


def test_perf_full_traceroute_te(benchmark, internet_te):
    """The compiled-plane trace again, but steered through an RSVP-TE
    explicit path: the flow is chosen so the head-end pushes the TE
    label and every hop walks ``_te_step`` instead of the LDP path."""
    internet = internet_te
    te_paths = [tunnel.path for tunnel in internet.te_tunnels]

    def rides(vp, dst):
        path = tuple(internet.true_forward_path(vp, dst))
        return any(
            path[start:start + len(te_path)] == te_path
            for te_path in te_paths
            for start in range(len(path) - len(te_path) + 1)
        )

    vp, dst = next(
        (vp, dst)
        for vp in internet.vps
        for dst in internet.campaign_targets()
        if rides(vp, dst)
    )

    def trace():
        return internet.prober.traceroute(vp, dst, start_ttl=2)

    result = benchmark(trace)
    assert result.hops


def test_perf_cold_vs_warm_routing(benchmark, internet):
    """Route resolution with a cold cache (the expensive path)."""
    vp = internet.vps[0]
    dst = internet.campaign_targets()[5]

    def cold_resolve():
        control = ControlPlane(internet.network)
        engine = ForwardingEngine(internet.network, control)
        return engine.send_probe(vp, dst, ttl=40, flow_id=1)

    outcome = benchmark(cold_resolve)
    assert outcome.forward_path


def test_perf_cold_routing_compiled(benchmark, internet):
    """Cold-engine probe served from a shared compiled plane.

    Models a fresh engine (new control plane, empty caches) attached
    to an already-compiled plane — the counterpart of
    ``test_perf_cold_vs_warm_routing``, which must resolve routes and
    walk; here the flow's program is a dictionary hit.
    """
    from repro.dataplane.compiled import CompiledPlane

    vp = internet.vps[0]
    dst = internet.campaign_targets()[5]
    plane = CompiledPlane()
    warm = ForwardingEngine(
        internet.network, ControlPlane(internet.network),
        compiled_plane=plane,
    )
    warm.send_probe(vp, dst, ttl=40, flow_id=1)

    def cold_resolve():
        control = ControlPlane(internet.network)
        engine = ForwardingEngine(
            internet.network, control, compiled_plane=plane
        )
        return engine.send_probe(vp, dst, ttl=40, flow_id=1)

    outcome = benchmark(cold_resolve)
    assert outcome.forward_path


def test_perf_internet_build(benchmark):
    def build():
        return build_internet(InternetConfig(seed=5))

    internet = benchmark(build)
    assert len(internet.network.routers) > 100


def test_perf_serve_throughput(benchmark):
    """Eight tenant campaigns multiplexed over two shared snapshots.

    Measures the whole serve path — registry attach, fair-scheduler
    turnstile, session threads — end to end; the guarded number is
    the wall-clock for the fleet, so regressions in any serve layer
    (or in snapshot sharing) surface here.
    """
    from repro.serve import (
        ServeClient,
        SnapshotRegistry,
        TenantSpec,
        TopologySpec,
    )

    def fleet():
        client = ServeClient(
            registry=SnapshotRegistry(), max_active=4
        )
        try:
            handles = [
                client.submit(
                    TenantSpec(
                        tenant=f"bench-{index}",
                        topology=TopologySpec(
                            scale=0.3,
                            seed=11 + index % 2,
                            vantage_points=3,
                            stubs_per_transit=2,
                        ),
                        max_targets=4,
                    )
                )
                for index in range(8)
            ]
            return [handle.wait(timeout=600) for handle in handles]
        finally:
            client.close()

    results = benchmark.pedantic(fleet, rounds=3, iterations=1)
    assert len(results) == 8
    assert all(result.traces for result in results)
