"""Bench: regenerate Table 2 (visibility effects grid)."""

from repro.experiments import table2_visibility


def test_table2_visibility_grid(benchmark, emit):
    result = benchmark(table2_visibility.run)
    assert result.all_match
    assert len(result.cells) == 16
    emit("table2_visibility", result.text)
