"""Bench: regenerate Fig. 7 (return vs forward asymmetry)."""

from repro.experiments import fig07_rfa


def test_fig07_rfa_distributions(benchmark, emit):
    result = benchmark(fig07_rfa.run)
    medians = result.medians()
    # Shape targets from the paper: Others/Ingress centred near 0,
    # Egress-with-revelation clearly shifted positive, and the
    # correction re-centred near 0.
    assert abs(medians["others"]) <= 1
    assert abs(medians["ingress"]) <= 1
    assert medians["egress_pr"] >= 2
    assert abs(medians["corrected"]) <= 1
    emit("fig07_rfa", result.text)
