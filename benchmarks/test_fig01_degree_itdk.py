"""Bench: regenerate Fig. 1 (ITDK-like node degree distribution)."""

from repro.experiments import fig01_degree


def test_fig01_degree_distribution(benchmark, emit):
    result = benchmark(fig01_degree.run)
    # Shape: a heavy right tail — high-degree nodes exist, far above
    # the typical degree.
    assert result.node_count > 50
    assert result.hdn_count >= 1
    assert result.max_degree >= 2 * result.hdn_threshold / 2
    emit("fig01_degree_itdk", result.text)
