"""Bench (extension): campaign behaviour across topology scales.

Sweeps the AS-size multiplier and reports how the campaign's key
quantities grow — a sanity check that the pipeline's findings are not
an artefact of one topology size, and a scalability measurement for
the simulator.
"""

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.experiments.common import format_table
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


def run_scale(scale):
    internet = build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(scale)),
            vantage_points=6,
            stubs_per_transit=4,
            seed=2017,
        )
    )
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(suspicious_asns=tuple(internet.transit_asns)),
    )
    result = campaign.run(internet.campaign_targets())
    revealed = result.successful_revelations()
    lengths = [r.tunnel_length for r in revealed]
    return (
        scale,
        len(internet.network.routers),
        len(result.pairs),
        len(revealed),
        max(lengths) if lengths else 0,
        result.probes_sent + result.revelation_probes,
    )


def run_sweep():
    return [run_scale(scale) for scale in (0.5, 1.0, 2.0)]


def test_scale_sweep(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    by_scale = {row[0]: row for row in rows}
    # Bigger topologies yield at least as many candidate pairs and
    # (weakly) deeper tunnels.
    assert by_scale[2.0][2] >= by_scale[0.5][2]
    assert by_scale[2.0][4] >= by_scale[0.5][4]
    for row in rows:
        assert row[3] > 0  # every scale reveals something
    emit(
        "scale_sweep",
        format_table(
            ["scale", "routers", "pairs", "revealed", "max FTL",
             "probes"],
            rows,
            title="Campaign behaviour across topology scales",
        ),
    )
