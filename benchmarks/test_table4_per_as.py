"""Bench: regenerate Table 4 (per-AS tunnel discovery + density)."""

from repro.experiments import table4_per_as


def test_table4_per_as(benchmark, emit):
    result = benchmark(table4_per_as.run)
    rows = result.rows
    # Shape: densities drop for most ASes with revelations (Table 4's
    # headline; tiny hub-shaped meshes may tick up), and the UHP-only
    # operator (AS2856) reveals nothing.
    drops = sum(
        1
        for summary in rows.values()
        if summary.revealed_pairs > 0
        and summary.density_after < summary.density_before - 1e-9
    )
    rises = sum(
        1
        for summary in rows.values()
        if summary.revealed_pairs > 0
        and summary.density_after > summary.density_before + 1e-9
    )
    assert drops > rises
    assert rows[2856].revealed_pairs == 0
    revealed = sum(r.revealed_pairs for r in rows.values())
    assert revealed > 0
    emit("table4_per_as", result.text)
