"""Bench: regenerate Table 5 (per-AS MPLS deployment)."""

from repro.experiments import table5_deployment


def test_table5_deployment(benchmark, emit):
    result = benchmark(table5_deployment.run)
    rows = result.rows
    # Shape: the pure-Juniper AS3257 leans DPR; the Cisco all-prefixes
    # AS3491 shows BRPR activity; signature shares reflect hardware.
    assert rows[3257].signature_shares.get("<255,64>", 0) > 0.3
    assert rows[3257].technique_shares.get("dpr", 0) >= rows[
        3257
    ].technique_shares.get("brpr", 0)
    assert rows[3491].signature_shares.get("<255,255>", 0) > 0.3
    emit("table5_deployment", result.text)
