"""Bench: regenerate Table 6 (technique applicability matrix)."""

from repro.experiments import table6_applicability


def test_table6_applicability(benchmark, emit):
    result = benchmark(table6_applicability.run)
    assert result.all_verified
    emit("table6_applicability", result.text)
