"""Bench: regenerate Table 1 (router TTL signatures)."""

from repro.experiments import table1_signatures


def test_table1_signatures(benchmark, emit):
    result = benchmark(table1_signatures.run)
    assert result.all_match
    emit("table1_signatures", result.text)
