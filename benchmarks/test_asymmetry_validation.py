"""Bench (extension): validate FRPLA's routing-asymmetry assumption.

Ground-truth forward/return data paths across the synthetic Internet:
asymmetry exists (hot potato) but its length difference centres at
zero — exactly the condition FRPLA needs to isolate tunnel lengths.
"""

from repro.analysis.asymmetry import measure_asymmetry
from repro.experiments.common import format_table


def test_asymmetry_assumption(benchmark, emit, context):
    internet = context.internet

    def measure():
        return measure_asymmetry(
            internet.engine,
            sources=internet.vps,
            destinations=internet.campaign_targets()[:20],
            owner_of=internet.router_of_address,
        )

    report = benchmark(measure)
    assert report.pairs
    assert report.centred(tolerance=1.0)
    differences = report.length_differences()
    rows = [
        ("pairs measured", len(report.pairs)),
        ("exactly symmetric", f"{report.symmetric_fraction:.0%}"),
        ("length diff median", f"{differences.median:g}"),
        ("length diff mean", f"{differences.mean:.2f}"),
        ("length diff min/max", f"{differences.min:g}/{differences.max:g}"),
    ]
    emit(
        "asymmetry_validation",
        format_table(
            ["metric", "value"], rows,
            title="FRPLA assumption: routing asymmetry centres at 0",
        ),
    )
