"""Bench: regenerate Fig. 11 (path length distribution shift)."""

from repro.experiments import fig11_pathlen


def test_fig11_path_lengths(benchmark, emit):
    result = benchmark(fig11_pathlen.run)
    assert len(result.invisible) > 0
    # Shape: revealing hidden hops shifts routes longer (paper: mean
    # 10 -> 12 on Tier-1-heavy targets).
    assert result.mean_shift > 0
    assert result.visible.median >= result.invisible.median
    emit("fig11_pathlen", result.text)
