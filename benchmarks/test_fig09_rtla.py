"""Bench: regenerate Fig. 9 (RTLA tunnel lengths + asymmetry)."""

from repro.experiments import fig09_rtla


def test_fig09_rtla(benchmark, emit):
    result = benchmark(fig09_rtla.run)
    assert len(result.return_tunnel_lengths) > 0
    # Shape: short return tunnels (like Fig. 5's forward ones), and
    # the RTLA-vs-FTL asymmetry centred at 0.
    assert result.return_tunnel_lengths.median <= 6
    assert abs(result.tunnel_asymmetry.median) <= 1
    emit("fig09_rtla", result.text)
