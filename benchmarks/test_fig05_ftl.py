"""Bench: regenerate Fig. 5 (forward tunnel length distribution)."""

from repro.experiments import fig05_ftl


def test_fig05_tunnel_lengths(benchmark, emit):
    result = benchmark(fig05_ftl.run)
    assert result.total_revealed > 0
    # Shape: strongly decreasing, short tail (few tunnels beyond ~12
    # hops in the paper; our synthetic cores are shallower).
    ambiguous = result.by_method["dpr-or-brpr"]
    assert len(ambiguous) > 0  # the single-LSR red dot exists
    all_lengths = [
        v for d in result.by_method.values() for v in d
    ]
    assert max(all_lengths) <= 12
    emit("fig05_ftl", result.text)
