"""Ablation benches: which mechanism makes each technique work.

Each ablation removes one ingredient the paper's techniques rely on
and shows the signal disappearing:

* FRPLA lives on the ``min(IP-TTL, LSE-TTL)`` rule at PHP pops;
* explicit-tunnel detection (and Table 3) lives on RFC 4950 quoting;
* UHP kills everything, proportionally to its deployment share.
"""

from repro.core.frpla import rfa_of_hop
from repro.experiments.common import format_table
from repro.mpls.config import MplsConfig, PoppingMode
from repro.net.vendors import CISCO
from repro.synth.gns3 import build_gns3


def _egress_rfa(testbed):
    trace = testbed.traceroute("CE2.left")
    hop = trace.hop_of(testbed.address("PE2.left"))
    if hop is None:
        return None
    sample = rfa_of_hop(hop)
    return None if sample is None else sample.rfa


def run_min_rule_ablation():
    """FRPLA's shift with and without the min rule."""
    rows = []
    for min_rule in (True, False):
        config = MplsConfig.from_vendor(
            CISCO, ttl_propagate=False
        ).with_overrides(min_ttl_on_pop=min_rule)
        testbed = build_gns3(config=config)
        rows.append(
            ("on" if min_rule else "off", _egress_rfa(testbed))
        )
    return rows


def test_ablation_min_rule(benchmark, emit):
    rows = benchmark(run_min_rule_ablation)
    values = dict(rows)
    # With the min rule the full tunnel length (3) shows; without it
    # the return path loses the tunnel hops entirely.
    assert values["on"] == 3
    assert values["off"] <= 0
    emit(
        "ablation_min_rule",
        format_table(
            ["min-on-pop", "egress RFA"], rows,
            title="Ablation: the min(IP,LSE) rule is FRPLA's signal",
        ),
    )


def run_uhp_ablation():
    """Revelation success as PHP flips to UHP."""
    rows = []
    for popping in (PoppingMode.PHP, PoppingMode.UHP):
        config = MplsConfig.from_vendor(
            CISCO, ttl_propagate=False
        ).with_overrides(popping=popping)
        testbed = build_gns3(config=config)
        from repro.core.revelation import reveal_tunnel

        # Under UHP the egress is hidden; aim at where it would be.
        revelation = reveal_tunnel(
            testbed.prober,
            testbed.vantage_point,
            ingress=testbed.address("PE1.left"),
            egress=testbed.address("PE2.left"),
        )
        rows.append((popping.value, revelation.tunnel_length))
    return rows


def test_ablation_uhp(benchmark, emit):
    rows = benchmark(run_uhp_ablation)
    values = dict(rows)
    assert values["php"] == 3
    assert values["uhp"] == 0
    emit(
        "ablation_uhp",
        format_table(
            ["popping", "LSRs revealed"], rows,
            title="Ablation: UHP defeats the revelation recursion",
        ),
    )


def run_rfc4950_ablation():
    """Explicit-tunnel visibility with and without RFC 4950."""
    rows = []
    for quoting in (True, False):
        config = MplsConfig.from_vendor(
            CISCO, ttl_propagate=True
        ).with_overrides(rfc4950=quoting)
        testbed = build_gns3(config=config)
        trace = testbed.traceroute("CE2.left")
        responding = len(trace.responsive_hops)
        labelled = sum(1 for hop in trace.hops if hop.has_labels)
        rows.append(
            ("on" if quoting else "off", responding, labelled)
        )
    return rows


def test_ablation_rfc4950(benchmark, emit):
    rows = benchmark(run_rfc4950_ablation)
    by_state = {row[0]: row for row in rows}
    # The LSRs still answer either way (ttl-propagate), but without
    # RFC 4950 no label is quoted: the tunnel cannot be *flagged*.
    assert by_state["on"][1] == by_state["off"][1]
    assert by_state["on"][2] == 3
    assert by_state["off"][2] == 0
    emit(
        "ablation_rfc4950",
        format_table(
            ["rfc4950", "responding hops", "labelled hops"], rows,
            title="Ablation: RFC 4950 quoting flags explicit tunnels",
        ),
    )
