"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
rendered rows are printed and also written under
``benchmarks/output/`` so the regenerated artefacts survive pytest's
output capture.
"""

import pathlib

import pytest

from repro.experiments.common import ContextConfig, campaign_context

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def context():
    """The standard campaign context, built once per session."""
    return campaign_context(ContextConfig())


@pytest.fixture(scope="session")
def emit():
    """Persist + print a regenerated table/figure."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit
