"""Bench: technique robustness across survey-driven random Internets.

Beyond the ten named Table 5 operators, the techniques must hold on
arbitrary topologies whose deployment knobs follow the operator survey
(48% ``no-ttl-propagate``, 10% UHP, Cisco/Juniper/mixed hardware).
Sweeps several seeds and checks the invariants that should survive any
draw: no fabricated hops, FRPLA baseline centred, densities never
rising after correction.
"""

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.campaign.postprocess import Aggregator
from repro.experiments.common import format_table
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import random_profiles


def run_random_internet(seed):
    internet = build_internet(
        InternetConfig(
            profiles=tuple(random_profiles(6, seed=seed, scale=0.7)),
            vantage_points=4,
            stubs_per_transit=2,
            seed=seed,
        )
    )
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(suspicious_asns=tuple(internet.transit_asns)),
    )
    result = campaign.run(internet.campaign_targets())
    aggregator = Aggregator(result, internet.asn_of_address)
    return internet, result, aggregator


def run_sweep(seeds=(1, 2, 3)):
    rows = []
    for seed in seeds:
        internet, result, aggregator = run_random_internet(seed)
        fabricated = 0
        for (x, _), revelation in result.revelations.items():
            asn = internet.asn_of_address(x)
            fabricated += sum(
                1
                for address in revelation.revealed
                if internet.asn_of_address(address) != asn
            )
        drops = rises = 0
        for asn in aggregator.asns():
            summary = aggregator.revelation_summary(asn)
            if summary.revealed_pairs == 0:
                continue
            if summary.density_after < summary.density_before - 1e-9:
                drops += 1
            elif summary.density_after > summary.density_before + 1e-9:
                rises += 1
        rows.append(
            (
                seed,
                len(result.pairs),
                len(result.successful_revelations()),
                fabricated,
                drops,
                rises,
            )
        )
    return rows


def test_robustness_across_seeds(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for seed, pairs, revealed, fabricated, _drops, _rises in rows:
        assert fabricated == 0, f"seed {seed} fabricated hops"
    total_revealed = sum(row[2] for row in rows)
    assert total_revealed > 0
    # Densities must drop at least as often as they rise, aggregated
    # over all seeds (tiny hub meshes can tick up individually).
    assert sum(row[4] for row in rows) >= sum(row[5] for row in rows)
    emit(
        "robustness_random_internets",
        format_table(
            [
                "seed", "pairs", "revealed", "fabricated",
                "density-drops", "density-rises",
            ],
            rows,
            title="Robustness: survey-driven random Internets",
        ),
    )
