"""Bench: regenerate Fig. 8 (RFA via time-exceeded vs echo-reply)."""

from repro.experiments import fig08_te_er


def test_fig08_te_vs_er(benchmark, emit):
    result = benchmark(fig08_te_er.run)
    assert len(result.time_exceeded) > 0
    assert len(result.echo_reply) > 0
    # Shape: time-exceeded shifted positive, echo-reply centred at 0.
    assert result.time_exceeded.median >= 1
    assert abs(result.echo_reply.median) <= 1
    emit("fig08_rfa_te_er", result.text)
