"""Bench (extension): taxonomy vs revelation coverage.

Splits one campaign's tunnels by what sees them: explicit/implicit
tunnels (the 2012 taxonomy over plain traces) versus invisible ones
(this paper's revelation pipeline).  With RFC 4950 partially disabled
and some ASes propagating TTLs, all three classes coexist — showing
why the 2017 techniques were needed on top of the 2012 taxonomy.
"""

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.core.taxonomy import TunnelClass, classify_trace
from repro.experiments.common import format_table
from repro.synth.failures import disable_rfc4950
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


def run_coverage():
    profiles = []
    for p in paper_profiles(0.7):
        # Half the operators keep propagation on so explicit and
        # implicit tunnels exist alongside the invisible ones.
        share = 1.0 if p.asn in (3491, 4134, 6762, 209, 3320) else 0.0
        profiles.append(
            type(p)(
                asn=p.asn, name=p.name, vendor_mix=p.vendor_mix,
                core_size=p.core_size, edge_size=p.edge_size,
                ttl_propagate_share=share, uhp_share=p.uhp_share,
                mesh_degree=p.mesh_degree,
                ldp_all_prefixes=p.ldp_all_prefixes,
            )
        )
    internet = build_internet(
        InternetConfig(
            profiles=tuple(profiles),
            vantage_points=6,
            stubs_per_transit=3,
            seed=4242,
        )
    )
    # A third of the propagating routers stop quoting labels: their
    # tunnels downgrade from explicit to implicit.
    disable_rfc4950(
        internet.network, fraction=0.33, seed=9,
        asns=internet.transit_asns,
    )
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(suspicious_asns=tuple(internet.transit_asns)),
    )
    result = campaign.run(internet.campaign_targets())
    explicit = implicit = 0
    for trace in result.traces:
        for segment in classify_trace(trace):
            if segment.kind == TunnelClass.EXPLICIT:
                explicit += 1
            else:
                implicit += 1
    invisible = len(result.successful_revelations())
    return explicit, implicit, invisible


def test_taxonomy_vs_revelation_coverage(benchmark, emit):
    explicit, implicit, invisible = benchmark.pedantic(
        run_coverage, rounds=1, iterations=1
    )
    # All three classes must coexist in this mixed deployment, and the
    # invisible class — untouchable by the 2012 taxonomy — is found
    # only by this paper's techniques.
    assert explicit > 0
    assert implicit > 0
    assert invisible > 0
    emit(
        "taxonomy_coverage",
        format_table(
            ["tunnel class", "seen by", "count"],
            [
                ("explicit", "RFC 4950 labels (2012)", explicit),
                ("implicit", "u-turn signature (2012)", implicit),
                ("invisible", "revelation pipeline (2017)", invisible),
            ],
            title="Taxonomy vs revelation: who sees which tunnels",
        ),
    )
