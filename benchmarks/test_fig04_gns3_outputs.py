"""Bench: regenerate the Fig. 2 / Fig. 4 emulation transcripts."""

from repro.experiments import fig04_gns3


def test_fig04_emulation(benchmark, emit):
    result = benchmark(fig04_gns3.run)
    assert set(result.transcripts) == {
        "default", "backward-recursive", "explicit-route",
        "totally-invisible",
    }
    emit("fig04_gns3", result.text)
